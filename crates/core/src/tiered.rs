//! Tiered anytime solving: a degradation ladder under one [`Budget`].
//!
//! A deadline-bound caller wants the best answer *available in time*,
//! not the best answer in principle. [`TieredSolver`] walks a ladder of
//! solvers from most to least precise —
//!
//! ```text
//! exact-bb  →  algo2-refined  →  algo2  →  uu
//! ```
//!
//! — giving every tier the whole remaining budget. The first tier to
//! finish wins. Budget expiry is *sticky* (see [`Budget`]), so once a
//! tier burns the deadline the tiers below it fail their first check and
//! the ladder falls through to the unbudgeted `uu` floor in `O(n)`:
//! the ladder's worst case is one deadline overrun plus a round-robin
//! split, never `k` overruns. Branch-and-bound is additionally
//! *anytime* — if it expires mid-search it returns its incumbent
//! (status [`TierStatus::Partial`]) instead of falling through, since
//! the incumbent is already at least as good as the next tier's answer.
//!
//! A per-tier **circuit breaker** keeps a persistently-overrunning tier
//! from taxing every request: after `k` consecutive budget failures the
//! tier is skipped ([`TierStatus::CircuitOpen`]) for the next `cooldown`
//! requests, then probed again. Oversized instances skip
//! branch-and-bound without a breaker penalty — [`TierStatus::TooLarge`]
//! is a property of the instance, not a sign the tier is slow.
//!
//! External cancellation ([`SolveError::Cancelled`]) aborts the whole
//! ladder: the caller no longer wants *any* answer, so there is nothing
//! to degrade to.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use rand::RngCore;
use serde::Serialize;

use crate::budget::Budget;
use crate::problem::{Assignment, Problem};
use crate::solver::{SolveError, Solver};
use crate::{algo2, exact_bb, heuristics, refine};

/// One rung of the degradation ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
#[serde(rename_all = "snake_case")]
pub enum Tier {
    /// Anytime branch-and-bound (exact when it completes).
    BranchAndBound,
    /// Algorithm 2 plus the exact per-server re-split.
    Algo2Refined,
    /// Algorithm 2 alone.
    Algo2,
    /// Price discovery ([`crate::price`]): tolerance-converged, cheaper
    /// per solve at very large `n`. Not in the default ladder; opt in
    /// via [`TieredSolver::with_ladder`] for scale-heavy streams.
    Price,
    /// Round-robin placement, equal split: the unbudgeted `O(n)` floor.
    Uu,
}

impl Tier {
    /// Stable identifier matching the corresponding [`Solver::name`].
    pub fn name(self) -> &'static str {
        match self {
            Tier::BranchAndBound => "exact-bb",
            Tier::Algo2Refined => "algo2-refined",
            Tier::Algo2 => "algo2",
            Tier::Price => "price",
            Tier::Uu => "uu",
        }
    }
}

/// How a tier's attempt (or non-attempt) ended.
///
/// Marked `#[non_exhaustive]`: future ladder mechanics may add ways for
/// a tier to end without breaking downstream matches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
#[serde(rename_all = "snake_case")]
#[non_exhaustive]
pub enum TierStatus {
    /// The tier finished and produced the answer.
    Completed,
    /// Branch-and-bound expired mid-search and produced its incumbent:
    /// a usable answer, but optimality is unproven. Counts as a breaker
    /// failure.
    Partial,
    /// The budget ran out before the tier finished; the ladder fell
    /// through. Counts as a breaker failure.
    Expired,
    /// The instance exceeds the tier's size limit; skipped without a
    /// breaker penalty.
    TooLarge,
    /// The tier's circuit breaker is open (too many recent failures);
    /// skipped without being attempted.
    CircuitOpen,
}

/// What happened at one rung of the ladder during a single solve.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TierOutcome {
    /// Which tier.
    pub tier: Tier,
    /// How its attempt ended.
    pub status: TierStatus,
    /// Wall-clock time spent in this tier, microseconds. Zero for tiers
    /// skipped without an attempt.
    pub micros: u64,
    /// Total utility of the tier's answer, when it produced one.
    pub utility: Option<f64>,
}

/// Degradation report for one tiered solve: which tier answered, and
/// the full trail of attempts above it.
///
/// Marked `#[non_exhaustive]`: construct via [`TieredSolver`], match
/// with a wildcard arm.
#[derive(Debug, Clone, PartialEq, Serialize)]
#[non_exhaustive]
pub struct Degradation {
    /// The tier whose answer was returned.
    pub tier: Tier,
    /// True when the answer is anything less than the top tier running
    /// to completion — a lower tier answered, or branch-and-bound
    /// returned an unproven incumbent.
    pub degraded: bool,
    /// One entry per ladder rung visited, in ladder order, ending with
    /// the rung that answered.
    pub outcomes: Vec<TierOutcome>,
}

/// A tiered solve's answer plus its [`Degradation`] report.
#[derive(Debug, Clone, PartialEq)]
pub struct TieredSolve {
    /// The best feasible assignment the budget allowed.
    pub assignment: Assignment,
    /// `assignment`'s total utility (also recorded in the report).
    pub utility: f64,
    /// Which tier answered and why.
    pub degradation: Degradation,
}

/// Per-tier circuit-breaker state. `failures` counts *consecutive*
/// budget failures; once it reaches the threshold the tier is skipped
/// until the solver-wide request counter passes `skip_until`.
#[derive(Debug, Default)]
struct BreakerState {
    failures: AtomicU32,
    skip_until: AtomicU64,
}

/// Default consecutive failures before a tier's breaker opens.
pub const DEFAULT_BREAKER_THRESHOLD: u32 = 3;
/// Default number of requests a tripped tier sits out.
pub const DEFAULT_BREAKER_COOLDOWN: u64 = 16;

/// The degradation-ladder solver. See the [module docs](self).
///
/// Breaker state is interior-mutable (atomics), so one shared
/// `TieredSolver` serves concurrent requests; the counters are
/// heuristics, not a consistency boundary, so races only shift *when*
/// a breaker trips, never correctness.
#[derive(Debug)]
pub struct TieredSolver {
    ladder: Vec<Tier>,
    breaker_threshold: u32,
    breaker_cooldown: u64,
    state: Vec<BreakerState>,
    requests: AtomicU64,
    /// Opt-in warm state for the [`Tier::Algo2`] rung (see [`Self::warm`]).
    warm: Option<Mutex<crate::incremental::WarmState>>,
}

impl Default for TieredSolver {
    fn default() -> Self {
        Self::new()
    }
}

/// Result of one tier's attempt, before breaker/report bookkeeping.
enum TierRun {
    Answer { assignment: Assignment, partial: bool },
    Expired,
    TooLarge,
}

/// Span name for one ladder rung. Spans carry `&'static str` names, so
/// the per-tier names are enumerated rather than formatted at runtime.
fn tier_span_name(tier: Tier) -> &'static str {
    match tier {
        Tier::BranchAndBound => "tier_exact_bb",
        Tier::Algo2Refined => "tier_algo2_refined",
        Tier::Algo2 => "tier_algo2",
        Tier::Price => "tier_price",
        Tier::Uu => "tier_uu",
    }
}

/// Registry handles for `aa_tier_attempts_total{tier}` /
/// `aa_tier_completed_total{tier}`, cached so the record path never
/// takes the registry lock.
fn tier_counters(tier: Tier) -> &'static (aa_obs::Counter, aa_obs::Counter) {
    static HANDLES: std::sync::OnceLock<[(aa_obs::Counter, aa_obs::Counter); 5]> =
        std::sync::OnceLock::new();
    let idx = match tier {
        Tier::BranchAndBound => 0,
        Tier::Algo2Refined => 1,
        Tier::Algo2 => 2,
        Tier::Price => 3,
        Tier::Uu => 4,
    };
    &HANDLES.get_or_init(|| {
        [Tier::BranchAndBound, Tier::Algo2Refined, Tier::Algo2, Tier::Price, Tier::Uu].map(|t| {
            let r = aa_obs::global();
            (
                r.counter_labeled("aa_tier_attempts_total", "tier", t.name()),
                r.counter_labeled("aa_tier_completed_total", "tier", t.name()),
            )
        })
    })[idx]
}

impl TieredSolver {
    /// The full ladder: `exact-bb → algo2-refined → algo2 → uu`.
    pub fn new() -> Self {
        Self::with_ladder(vec![
            Tier::BranchAndBound,
            Tier::Algo2Refined,
            Tier::Algo2,
            Tier::Uu,
        ])
    }

    /// The ladder without branch-and-bound: `algo2-refined → algo2 → uu`.
    /// With an unlimited budget this is **bit-identical** to
    /// [`Algo2Refined`](crate::solver::Algo2Refined) — the top tier
    /// always completes.
    pub fn approximate() -> Self {
        Self::with_ladder(vec![Tier::Algo2Refined, Tier::Algo2, Tier::Uu])
    }

    /// A custom ladder, walked in the given order. An empty ladder is
    /// legal but every solve returns `DeadlineExceeded`.
    pub fn with_ladder(ladder: Vec<Tier>) -> Self {
        let state = ladder.iter().map(|_| BreakerState::default()).collect();
        TieredSolver {
            ladder,
            breaker_threshold: DEFAULT_BREAKER_THRESHOLD,
            breaker_cooldown: DEFAULT_BREAKER_COOLDOWN,
            state,
            requests: AtomicU64::new(0),
            warm: None,
        }
    }

    /// Enable the warm incremental path for the [`Tier::Algo2`] rung:
    /// the tier solves through
    /// [`incremental::solve_incremental_budgeted`](crate::incremental::solve_incremental_budgeted)
    /// with a [`WarmState`](crate::incremental::WarmState) that persists
    /// across requests. Answers stay **bit-identical** to the cold
    /// `algo2` path (the incremental engine's contract); only the
    /// latency changes when consecutive requests drift slowly. Off by
    /// default so existing ladders are byte-for-byte unchanged.
    ///
    /// The state sits behind a `Mutex`, so a shared solver serving
    /// concurrent streams serializes its Algo2 rung; give each stream
    /// its own warm `TieredSolver` (as `aa serve` does) to keep the
    /// warm cache coherent per stream.
    pub fn warm(mut self) -> Self {
        self.warm = Some(Mutex::new(crate::incremental::WarmState::new()));
        self
    }

    /// Stats from the most recent warm Algo2 solve, or `None` when the
    /// warm path is not enabled.
    pub fn warm_stats(&self) -> Option<crate::incremental::IncrementalStats> {
        self.warm
            .as_ref()
            .map(|w| w.lock().unwrap_or_else(|e| e.into_inner()).last_stats())
    }

    /// Override the circuit breaker: open after `threshold` consecutive
    /// failures, skip the tier for the next `cooldown` requests.
    /// `threshold = 0` is clamped to 1 (a breaker that trips on zero
    /// failures would never run anything).
    pub fn breaker(mut self, threshold: u32, cooldown: u64) -> Self {
        self.breaker_threshold = threshold.max(1);
        self.breaker_cooldown = cooldown;
        self
    }

    /// The configured ladder, top tier first.
    pub fn ladder(&self) -> &[Tier] {
        &self.ladder
    }

    /// Walk the ladder under `budget` and return the best answer it
    /// allows, plus the degradation report.
    ///
    /// Errors only when there is no answer at all:
    /// [`SolveError::Cancelled`] if the budget's token fired externally,
    /// or [`SolveError::DeadlineExceeded`] if every rung failed (which a
    /// ladder ending in [`Tier::Uu`] — both defaults — cannot hit).
    pub fn solve_within(
        &self,
        problem: &Problem,
        budget: &Budget,
    ) -> Result<TieredSolve, SolveError> {
        self.solve_within_impl(problem, budget, None)
    }

    /// [`Self::solve_within`] with a caller-owned [`WarmState`] for the
    /// [`Tier::Algo2`] rung instead of the solver's internal one (if
    /// any). This is the per-stream entry point: a shard holding one
    /// `WarmState` per request stream threads the right state through a
    /// *shared* `TieredSolver`, keeping breaker state per shard while
    /// warm brackets stay per stream. Answers are **bit-identical** to
    /// the cold path regardless of the state passed (the incremental
    /// engine's contract).
    pub fn solve_within_warm(
        &self,
        problem: &Problem,
        budget: &Budget,
        warm: &mut crate::incremental::WarmState,
    ) -> Result<TieredSolve, SolveError> {
        self.solve_within_impl(problem, budget, Some(warm))
    }

    /// [`Self::solve_within_warm`] with the same input/output screening
    /// as [`Self::try_solve_within`].
    pub fn try_solve_within_warm(
        &self,
        problem: &Problem,
        budget: &Budget,
        warm: &mut crate::incremental::WarmState,
    ) -> Result<TieredSolve, SolveError> {
        crate::solver::check_finite_utilities(problem)?;
        let solved = self.solve_within_impl(problem, budget, Some(warm))?;
        solved
            .assignment
            .validate(problem)
            .map_err(SolveError::Infeasible)?;
        Ok(solved)
    }

    /// Panic-containing solve entry: [`Self::try_solve_within`] (or the
    /// warm variant when `warm` is given) behind a
    /// [`std::panic::catch_unwind`] boundary. A panic anywhere in the
    /// solve pipeline comes back as [`SolveError::Panicked`] instead of
    /// unwinding into (and killing) the calling worker thread.
    ///
    /// On a panic the passed warm state may have been half-updated;
    /// this entry point [`invalidate`](crate::incremental::WarmState::invalidate)s
    /// it before returning so the next solve through it rebuilds from
    /// scratch rather than trusting corrupt brackets.
    pub fn try_solve_within_caught(
        &self,
        problem: &Problem,
        budget: &Budget,
        warm: Option<&mut crate::incremental::WarmState>,
    ) -> Result<TieredSolve, SolveError> {
        match warm {
            None => std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                self.try_solve_within(problem, budget)
            }))
            .unwrap_or_else(|payload| Err(SolveError::Panicked(panic_message(&*payload)))),
            Some(state) => {
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    self.try_solve_within_warm(problem, budget, &mut *state)
                }));
                match result {
                    Ok(r) => r,
                    Err(payload) => {
                        state.invalidate();
                        Err(SolveError::Panicked(panic_message(&*payload)))
                    }
                }
            }
        }
    }

    fn solve_within_impl(
        &self,
        problem: &Problem,
        budget: &Budget,
        mut external: Option<&mut crate::incremental::WarmState>,
    ) -> Result<TieredSolve, SolveError> {
        let req = self.requests.fetch_add(1, Ordering::AcqRel) + 1;
        let mut outcomes: Vec<TierOutcome> = Vec::with_capacity(self.ladder.len());
        for (idx, &tier) in self.ladder.iter().enumerate() {
            if req <= self.state[idx].skip_until.load(Ordering::Acquire) {
                outcomes.push(TierOutcome {
                    tier,
                    status: TierStatus::CircuitOpen,
                    micros: 0,
                    utility: None,
                });
                continue;
            }
            let _tier_span = aa_obs::span!(tier_span_name(tier));
            if aa_obs::record_enabled() {
                tier_counters(tier).0.inc();
            }
            let start = Instant::now();
            let run = run_tier(tier, problem, budget, self.warm.as_ref(), external.as_deref_mut())?;
            let micros = start.elapsed().as_micros() as u64;
            match run {
                TierRun::Answer { assignment, partial } => {
                    if aa_obs::record_enabled() {
                        tier_counters(tier).1.inc();
                    }
                    if partial {
                        self.record_failure(idx, req);
                    } else {
                        self.state[idx].failures.store(0, Ordering::Release);
                    }
                    let utility = assignment.total_utility(problem);
                    outcomes.push(TierOutcome {
                        tier,
                        status: if partial {
                            TierStatus::Partial
                        } else {
                            TierStatus::Completed
                        },
                        micros,
                        utility: Some(utility),
                    });
                    let degraded = idx != 0 || partial;
                    return Ok(TieredSolve {
                        assignment,
                        utility,
                        degradation: Degradation { tier, degraded, outcomes },
                    });
                }
                TierRun::Expired => {
                    self.record_failure(idx, req);
                    outcomes.push(TierOutcome {
                        tier,
                        status: TierStatus::Expired,
                        micros,
                        utility: None,
                    });
                }
                TierRun::TooLarge => {
                    outcomes.push(TierOutcome {
                        tier,
                        status: TierStatus::TooLarge,
                        micros,
                        utility: None,
                    });
                }
            }
        }
        Err(SolveError::DeadlineExceeded)
    }

    /// [`Self::solve_within`] with the same input/output screening as
    /// [`Solver::try_solve_with`]: rejects non-finite utility curves up
    /// front and validates the answer's feasibility. The entry point for
    /// callers feeding untrusted problems under real deadlines (e.g.
    /// `aa serve`).
    pub fn try_solve_within(
        &self,
        problem: &Problem,
        budget: &Budget,
    ) -> Result<TieredSolve, SolveError> {
        crate::solver::check_finite_utilities(problem)?;
        let solved = self.solve_within(problem, budget)?;
        solved
            .assignment
            .validate(problem)
            .map_err(SolveError::Infeasible)?;
        Ok(solved)
    }

    fn record_failure(&self, idx: usize, req: u64) {
        let s = &self.state[idx];
        let failures = s.failures.fetch_add(1, Ordering::AcqRel) + 1;
        if failures >= self.breaker_threshold {
            s.skip_until.store(req + self.breaker_cooldown, Ordering::Release);
            s.failures.store(0, Ordering::Release);
        }
    }
}

/// Best-effort string form of a caught panic payload.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn run_tier(
    tier: Tier,
    problem: &Problem,
    budget: &Budget,
    warm: Option<&Mutex<crate::incremental::WarmState>>,
    external: Option<&mut crate::incremental::WarmState>,
) -> Result<TierRun, SolveError> {
    match tier {
        Tier::BranchAndBound => match exact_bb::solve_budgeted(problem, budget) {
            Ok(b) => Ok(TierRun::Answer {
                assignment: b.assignment,
                partial: !b.optimal,
            }),
            Err(SolveError::TooLarge { .. }) => Ok(TierRun::TooLarge),
            Err(SolveError::DeadlineExceeded) => Ok(TierRun::Expired),
            Err(e) => Err(e),
        },
        Tier::Algo2Refined => match refine::solve_refined_budgeted(problem, budget) {
            Ok(a) => Ok(TierRun::Answer { assignment: a, partial: false }),
            Err(SolveError::DeadlineExceeded) => Ok(TierRun::Expired),
            Err(e) => Err(e),
        },
        Tier::Algo2 => {
            // The warm incremental path is bit-identical to the cold
            // solve (differential proptests pin this), so enabling it
            // changes latency, never answers. A caller-owned per-stream
            // state takes precedence over the solver's shared one.
            let run = match (external, warm) {
                (Some(state), _) => {
                    crate::incremental::solve_incremental_budgeted(problem, state, budget)
                }
                (None, Some(w)) => {
                    let mut state = w.lock().unwrap_or_else(|e| e.into_inner());
                    crate::incremental::solve_incremental_budgeted(problem, &mut state, budget)
                }
                (None, None) => algo2::solve_budgeted(problem, budget),
            };
            match run {
                Ok(a) => Ok(TierRun::Answer { assignment: a, partial: false }),
                Err(SolveError::DeadlineExceeded) => Ok(TierRun::Expired),
                Err(e) => Err(e),
            }
        }
        Tier::Price => {
            // Same warm-state precedence as Algo2; the price backend
            // reads its own compartment of the shared container.
            let run = match (external, warm) {
                (Some(state), _) => {
                    crate::price::solve_warm_budgeted(problem, state.price_mut(), budget)
                }
                (None, Some(w)) => {
                    let mut state = w.lock().unwrap_or_else(|e| e.into_inner());
                    crate::price::solve_warm_budgeted(problem, state.price_mut(), budget)
                }
                (None, None) => crate::price::solve_budgeted(problem, budget),
            };
            match run {
                Ok(a) => Ok(TierRun::Answer { assignment: a, partial: false }),
                Err(SolveError::DeadlineExceeded) => Ok(TierRun::Expired),
                Err(e) => Err(e),
            }
        }
        Tier::Uu => {
            // The floor ignores expiry — it exists precisely so an
            // exhausted budget still yields a feasible answer — but an
            // external cancel means nobody wants even that.
            if let Err(SolveError::Cancelled) = budget.check() {
                return Err(SolveError::Cancelled);
            }
            Ok(TierRun::Answer {
                assignment: heuristics::uu(problem),
                partial: false,
            })
        }
    }
}

impl Solver for TieredSolver {
    fn name(&self) -> &'static str {
        "tiered"
    }

    fn solve_with(&self, problem: &Problem, _rng: &mut dyn RngCore) -> Assignment {
        self.solve_within(problem, &Budget::unlimited())
            .expect("unlimited tiered solve cannot fail: the uu floor is infallible")
            .assignment
    }

    fn try_solve_with(
        &self,
        problem: &Problem,
        _rng: &mut dyn RngCore,
    ) -> Result<Assignment, SolveError> {
        self.try_solve_within(problem, &Budget::unlimited())
            .map(|solved| solved.assignment)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    use aa_utility::{CappedLinear, DynUtility, LogUtility, Power, Utility};

    fn arc<U: Utility + 'static>(u: U) -> DynUtility {
        Arc::new(u)
    }

    fn mixed_problem(m: usize, n: usize, seed: u64) -> Problem {
        Problem::builder(m, 12.0)
            .threads((0..n).map(|i| {
                let s = 1.0 + ((i as u64 * 5 + seed * 3) % 7) as f64;
                match i % 3 {
                    0 => arc(Power::new(s, 0.5, 12.0)),
                    1 => arc(LogUtility::new(s, 0.8, 12.0)),
                    _ => arc(CappedLinear::new(s, 4.0, 12.0)),
                }
            }))
            .build()
            .unwrap()
    }

    #[test]
    fn unlimited_approximate_is_bit_identical_to_algo2_refined() {
        let solver = TieredSolver::approximate();
        for seed in 0..4 {
            let p = mixed_problem(3, 11, seed);
            let tiered = solver.solve_within(&p, &Budget::unlimited()).unwrap();
            assert_eq!(tiered.assignment, refine::solve_refined(&p), "seed {seed}");
            assert_eq!(tiered.degradation.tier, Tier::Algo2Refined);
            assert!(!tiered.degradation.degraded);
            assert_eq!(tiered.degradation.outcomes.len(), 1);
            assert_eq!(tiered.degradation.outcomes[0].status, TierStatus::Completed);
        }
    }

    #[test]
    fn unlimited_full_ladder_answers_from_branch_and_bound_on_small_instances() {
        let p = mixed_problem(2, 6, 1);
        let solver = TieredSolver::new();
        let tiered = solver.solve_within(&p, &Budget::unlimited()).unwrap();
        assert_eq!(tiered.degradation.tier, Tier::BranchAndBound);
        assert!(!tiered.degradation.degraded);
        assert_eq!(tiered.assignment, exact_bb::solve(&p));
    }

    #[test]
    fn oversized_instance_skips_bb_without_breaker_penalty() {
        let p = mixed_problem(4, exact_bb::MAX_THREADS + 5, 0);
        let solver = TieredSolver::new().breaker(1, 100);
        for round in 0..3 {
            let tiered = solver.solve_within(&p, &Budget::unlimited()).unwrap();
            assert_eq!(tiered.degradation.tier, Tier::Algo2Refined, "round {round}");
            assert!(tiered.degradation.degraded);
            // TooLarge every round — never CircuitOpen, even with the
            // hair-trigger breaker.
            assert_eq!(tiered.degradation.outcomes[0].status, TierStatus::TooLarge);
            assert_eq!(tiered.assignment, refine::solve_refined(&p));
        }
    }

    #[test]
    fn exhausted_budget_falls_through_to_the_uu_floor() {
        let p = mixed_problem(3, 11, 2);
        let solver = TieredSolver::new();
        let tiered = solver.solve_within(&p, &Budget::with_fuel(0)).unwrap();
        assert_eq!(tiered.degradation.tier, Tier::Uu);
        assert!(tiered.degradation.degraded);
        assert_eq!(tiered.assignment, heuristics::uu(&p));
        tiered.assignment.validate(&p).unwrap();
        // Every budgeted tier recorded a typed expiry on the way down.
        let statuses: Vec<TierStatus> =
            tiered.degradation.outcomes.iter().map(|o| o.status).collect();
        assert_eq!(
            statuses,
            vec![
                TierStatus::Expired,
                TierStatus::Expired,
                TierStatus::Expired,
                TierStatus::Completed
            ]
        );
    }

    #[test]
    fn partial_branch_and_bound_returns_its_incumbent() {
        // Find a fuel level where the refined seed completes but the
        // search doesn't: the tier answers Partial with the incumbent.
        let p = mixed_problem(2, 8, 3);
        let ladder = TieredSolver::with_ladder(vec![Tier::BranchAndBound, Tier::Uu]);
        let mut saw_partial = false;
        for fuel in (0..2000).step_by(7) {
            let tiered = ladder.solve_within(&p, &Budget::with_fuel(fuel)).unwrap();
            if tiered.degradation.tier == Tier::BranchAndBound
                && tiered.degradation.outcomes.last().unwrap().status == TierStatus::Partial
            {
                saw_partial = true;
                assert!(tiered.degradation.degraded);
                tiered.assignment.validate(&p).unwrap();
                // The incumbent is at least the refined seed.
                assert!(tiered.utility >= refine::solve_refined(&p).total_utility(&p) - 1e-9);
            }
        }
        assert!(saw_partial, "no fuel level produced a partial B&B answer");
    }

    #[test]
    fn breaker_trips_after_consecutive_failures_and_reprobes_after_cooldown() {
        let p = mixed_problem(2, 6, 0);
        let solver = TieredSolver::new().breaker(2, 3);
        // Two starved solves: every budgeted tier expires twice → all
        // three breakers open (fuel exhaustion is sticky across tiers).
        for _ in 0..2 {
            let t = solver.solve_within(&p, &Budget::with_fuel(0)).unwrap();
            assert_eq!(t.degradation.outcomes[0].status, TierStatus::Expired);
        }
        // Requests 3..=5 fall inside the cooldown: the budgeted tiers
        // are skipped unprobed even though the budget is now unlimited,
        // and the uu floor answers.
        for _ in 0..3 {
            let t = solver.solve_within(&p, &Budget::unlimited()).unwrap();
            assert_eq!(t.degradation.outcomes[0].status, TierStatus::CircuitOpen);
            assert_eq!(t.degradation.outcomes[1].status, TierStatus::CircuitOpen);
            assert_eq!(t.degradation.tier, Tier::Uu);
        }
        // Request 6 is past skip_until: the breaker half-opens and the
        // probe succeeds.
        let t = solver.solve_within(&p, &Budget::unlimited()).unwrap();
        assert_eq!(t.degradation.tier, Tier::BranchAndBound);
        assert_eq!(t.degradation.outcomes[0].status, TierStatus::Completed);
    }

    #[test]
    fn success_resets_the_consecutive_failure_count() {
        let p = mixed_problem(2, 6, 0);
        let solver = TieredSolver::new().breaker(2, 50);
        // fail, succeed, fail, succeed…: the breaker must never open.
        for round in 0..4 {
            let t = solver.solve_within(&p, &Budget::with_fuel(0)).unwrap();
            assert_eq!(
                t.degradation.outcomes[0].status,
                TierStatus::Expired,
                "round {round}: breaker opened despite interleaved successes"
            );
            let t = solver.solve_within(&p, &Budget::unlimited()).unwrap();
            assert_eq!(t.degradation.tier, Tier::BranchAndBound, "round {round}");
        }
    }

    #[test]
    fn tiny_wall_clock_budget_on_a_large_instance_is_feasible_and_beats_uu() {
        // The ISSUE's acceptance bar: a large instance under ~1 ms must
        // return a feasible assignment (never an error) with utility at
        // least the uu floor's.
        let p = mixed_problem(64, 8192, 0);
        let solver = TieredSolver::new();
        let budget = Budget::with_deadline(Duration::from_millis(1));
        let tiered = solver.solve_within(&p, &budget).unwrap();
        tiered.assignment.validate(&p).unwrap();
        let floor = heuristics::uu(&p).total_utility(&p);
        assert!(
            tiered.utility >= floor - 1e-9,
            "tiered {} below uu floor {floor}",
            tiered.utility
        );
    }

    #[test]
    fn external_cancellation_aborts_the_ladder() {
        let p = mixed_problem(3, 11, 1);
        let solver = TieredSolver::new();
        let budget = Budget::unlimited();
        budget.cancel_token().cancel();
        assert_eq!(
            solver.solve_within(&p, &budget).unwrap_err(),
            SolveError::Cancelled
        );
    }

    #[test]
    fn empty_ladder_reports_deadline_exceeded() {
        let p = mixed_problem(2, 4, 0);
        let solver = TieredSolver::with_ladder(vec![]);
        assert_eq!(
            solver.solve_within(&p, &Budget::unlimited()).unwrap_err(),
            SolveError::DeadlineExceeded
        );
    }

    #[test]
    fn solver_trait_entry_points_work() {
        let p = mixed_problem(2, 6, 2);
        let solver = TieredSolver::new();
        assert_eq!(solver.name(), "tiered");
        let a = solver.solve(&p);
        a.validate(&p).unwrap();
        assert_eq!(solver.try_solve(&p).unwrap(), a);
    }

    #[test]
    fn warm_algo2_tier_is_bit_identical_and_keeps_state_across_requests() {
        use crate::incremental::SolveMode;

        let solver = TieredSolver::with_ladder(vec![Tier::Algo2, Tier::Uu]).warm();
        for seed in 0..4 {
            let p = mixed_problem(3, 11, seed);
            let t = solver.solve_within(&p, &Budget::unlimited()).unwrap();
            assert_eq!(t.assignment, algo2::solve(&p), "seed {seed}");
        }
        // Re-solving the *same* problem object hits the identical fast
        // path: the warm state survived the previous requests.
        let p = mixed_problem(3, 11, 9);
        let first = solver.solve_within(&p, &Budget::unlimited()).unwrap();
        let again = solver.solve_within(&p, &Budget::unlimited()).unwrap();
        assert_eq!(first.assignment, again.assignment);
        assert_eq!(solver.warm_stats().unwrap().mode, SolveMode::Identical);
        // A cold solver never reports warm stats.
        assert!(TieredSolver::new().warm_stats().is_none());
    }

    #[test]
    fn external_warm_state_is_bit_identical_and_stays_warm() {
        use crate::incremental::{SolveMode, WarmState};

        let solver = TieredSolver::with_ladder(vec![Tier::Algo2, Tier::Uu]);
        let mut stream_a = WarmState::new();
        let mut stream_b = WarmState::new();
        let pa = mixed_problem(3, 11, 0);
        let pb = mixed_problem(3, 13, 1);
        for _ in 0..3 {
            let a = solver.solve_within_warm(&pa, &Budget::unlimited(), &mut stream_a).unwrap();
            assert_eq!(a.assignment, algo2::solve(&pa));
            let b = solver.solve_within_warm(&pb, &Budget::unlimited(), &mut stream_b).unwrap();
            assert_eq!(b.assignment, algo2::solve(&pb));
        }
        // Each stream's state converged to the identical fast path on
        // its own problem — interleaving did not thrash the brackets.
        assert_eq!(stream_a.last_stats().mode, SolveMode::Identical);
        assert_eq!(stream_b.last_stats().mode, SolveMode::Identical);
    }

    #[test]
    fn caught_entry_matches_uncaught_on_healthy_solves() {
        let solver = TieredSolver::new();
        let p = mixed_problem(3, 11, 2);
        let caught = solver
            .try_solve_within_caught(&p, &Budget::unlimited(), None)
            .unwrap();
        let plain = solver.try_solve_within(&p, &Budget::unlimited()).unwrap();
        assert_eq!(caught.assignment, plain.assignment);
    }

    #[test]
    fn caught_entry_contains_panics_and_invalidates_warm_state() {
        use crate::incremental::{SolveMode, WarmState};
        use aa_utility::Utility;

        // A utility curve that panics when evaluated: finite on the
        // probe grid 0..=cap (so input screening admits it) is not
        // achievable while also panicking — instead, panic on the
        // *derivative*, which screening never calls but the bisection
        // hot loop does.
        #[derive(Debug)]
        struct Grenade;
        impl Utility for Grenade {
            fn value(&self, x: f64) -> f64 {
                x.sqrt()
            }
            fn derivative(&self, _x: f64) -> f64 {
                panic!("chaos: derivative detonated")
            }
            fn cap(&self) -> f64 {
                12.0
            }
        }

        let p = Problem::builder(2, 12.0)
            .threads((0..4).map(|_| Arc::new(Grenade) as aa_utility::DynUtility))
            .build()
            .unwrap();
        let solver = TieredSolver::with_ladder(vec![Tier::Algo2]);
        let mut warm = WarmState::new();
        // Quiet the default panic hook for the intentional detonation.
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let err = solver
            .try_solve_within_caught(&p, &Budget::unlimited(), Some(&mut warm))
            .unwrap_err();
        std::panic::set_hook(hook);
        match err {
            SolveError::Panicked(msg) => assert!(msg.contains("detonated"), "{msg}"),
            other => panic!("expected Panicked, got {other:?}"),
        }
        // The half-updated warm state was invalidated: the next solve
        // through it must rebuild rather than reuse corrupt brackets.
        let healthy = mixed_problem(2, 5, 0);
        let solver2 = TieredSolver::with_ladder(vec![Tier::Algo2, Tier::Uu]);
        let again = solver2
            .solve_within_warm(&healthy, &Budget::unlimited(), &mut warm)
            .unwrap();
        assert_eq!(again.assignment, algo2::solve(&healthy));
        assert_eq!(warm.last_stats().mode, SolveMode::Cold);
    }

    #[test]
    fn degradation_report_serializes() {
        let p = mixed_problem(3, 11, 0);
        let solver = TieredSolver::new();
        let tiered = solver.solve_within(&p, &Budget::with_fuel(0)).unwrap();
        let json = serde_json::to_string(&tiered.degradation).unwrap();
        assert!(json.contains("\"tier\":\"uu\""), "{json}");
        assert!(json.contains("\"status\":\"expired\""), "{json}");
    }
}
