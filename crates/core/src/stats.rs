//! Assignment diagnostics: the numbers an operator looks at besides
//! total utility.
//!
//! Utility maximization deliberately says nothing about *fairness* or
//! *balance*; these metrics make the trade-offs visible so deployments
//! can decide whether a utility-optimal plan is operationally acceptable
//! (the cloud-placement example prints them).

use serde::{Deserialize, Serialize};

use crate::problem::{Assignment, Problem};

/// Summary statistics of an assignment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AssignmentStats {
    /// Total utility `Σ f_i(c_i)`.
    pub total_utility: f64,
    /// Jain's fairness index of per-thread utilities:
    /// `(Σu)² / (n·Σu²)` — 1 means perfectly even, `1/n` means one thread
    /// has everything.
    pub utility_fairness: f64,
    /// Jain's fairness index of per-thread allocations.
    pub allocation_fairness: f64,
    /// Fraction of total capacity actually allocated.
    pub capacity_utilization: f64,
    /// Largest / smallest per-server load (∞ if any server is idle while
    /// another is loaded).
    pub load_imbalance: f64,
    /// Threads allocated exactly zero resource.
    pub starved_threads: usize,
    /// Threads per server, min and max.
    pub spread: (usize, usize),
}

/// Jain's fairness index of a nonnegative vector. Empty and all-zero
/// inputs are defined as perfectly fair (1.0).
pub fn jain_index(values: &[f64]) -> f64 {
    let n = values.len();
    if n == 0 {
        return 1.0;
    }
    let sum: f64 = values.iter().sum();
    let sum_sq: f64 = values.iter().map(|v| v * v).sum();
    if sum_sq == 0.0 {
        return 1.0;
    }
    (sum * sum) / (n as f64 * sum_sq)
}

/// Compute diagnostics for an assignment.
pub fn stats(problem: &Problem, assignment: &Assignment) -> AssignmentStats {
    let utilities: Vec<f64> = (0..problem.len())
        .map(|i| problem.utility_of(i, assignment.amount[i]))
        .collect();
    let loads = assignment.server_loads(problem);
    let counts: Vec<usize> = assignment
        .server_groups(problem)
        .iter()
        .map(|g| g.len())
        .collect();

    let max_load = loads.iter().cloned().fold(0.0_f64, f64::max);
    let min_load = loads.iter().cloned().fold(f64::INFINITY, f64::min);
    let load_imbalance = if max_load == 0.0 {
        1.0
    } else if min_load == 0.0 {
        f64::INFINITY
    } else {
        max_load / min_load
    };

    AssignmentStats {
        total_utility: utilities.iter().sum(),
        utility_fairness: jain_index(&utilities),
        allocation_fairness: jain_index(&assignment.amount),
        capacity_utilization: loads.iter().sum::<f64>()
            / (problem.servers() as f64 * problem.capacity()),
        load_imbalance,
        starved_threads: assignment.amount.iter().filter(|&&c| c <= 0.0).count(),
        spread: (
            counts.iter().copied().min().unwrap_or(0),
            counts.iter().copied().max().unwrap_or(0),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use aa_utility::{DynUtility, Power, Utility};

    use crate::{algo2, heuristics};

    fn arc<U: Utility + 'static>(u: U) -> DynUtility {
        Arc::new(u)
    }

    fn problem() -> Problem {
        Problem::builder(2, 10.0)
            .threads((0..6).map(|i| arc(Power::new(1.0 + i as f64, 0.5, 10.0))))
            .build()
            .unwrap()
    }

    #[test]
    fn jain_extremes() {
        assert_eq!(jain_index(&[]), 1.0);
        assert_eq!(jain_index(&[0.0, 0.0]), 1.0);
        assert!((jain_index(&[5.0, 5.0, 5.0]) - 1.0).abs() < 1e-12);
        // One-thread-takes-all → 1/n.
        assert!((jain_index(&[9.0, 0.0, 0.0]) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn jain_is_scale_invariant() {
        let a = [1.0, 2.0, 3.0];
        let b = [10.0, 20.0, 30.0];
        assert!((jain_index(&a) - jain_index(&b)).abs() < 1e-12);
    }

    #[test]
    fn stats_of_uu_are_perfectly_fair_in_allocation() {
        let p = problem();
        let s = stats(&p, &heuristics::uu(&p));
        assert!((s.allocation_fairness - 1.0).abs() < 1e-12);
        assert!((s.capacity_utilization - 1.0).abs() < 1e-12);
        assert_eq!(s.spread, (3, 3));
        assert_eq!(s.starved_threads, 0);
    }

    #[test]
    fn algo2_trades_fairness_for_utility() {
        let p = problem();
        let smart = stats(&p, &algo2::solve(&p));
        let even = stats(&p, &heuristics::uu(&p));
        assert!(smart.total_utility >= even.total_utility - 1e-9);
        // The optimal plan skews allocations toward valuable threads.
        assert!(smart.allocation_fairness <= even.allocation_fairness + 1e-12);
    }

    #[test]
    fn load_imbalance_cases() {
        let p = problem();
        let balanced = Assignment {
            server: vec![0, 0, 0, 1, 1, 1],
            amount: vec![2.0; 6],
        };
        assert!((stats(&p, &balanced).load_imbalance - 1.0).abs() < 1e-12);

        let skewed = Assignment {
            server: vec![0; 6],
            amount: vec![1.0; 6],
        };
        assert!(stats(&p, &skewed).load_imbalance.is_infinite());

        let idle = Assignment::trivial(6);
        assert_eq!(stats(&p, &idle).load_imbalance, 1.0);
        assert_eq!(stats(&p, &idle).starved_threads, 6);
    }

    #[test]
    fn utilization_fraction() {
        let p = problem();
        let half = Assignment {
            server: vec![0, 0, 0, 1, 1, 1],
            amount: vec![5.0 / 3.0; 6],
        };
        assert!((stats(&p, &half).capacity_utilization - 0.5).abs() < 1e-12);
    }

    #[test]
    fn stats_serialize() {
        let p = problem();
        let s = stats(&p, &algo2::solve(&p));
        let json = serde_json::to_string(&s).unwrap();
        assert!(json.contains("utility_fairness"));
    }
}
