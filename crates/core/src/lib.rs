#![warn(missing_docs)]

//! # aa-core — the assign-and-allocate (AA) problem
//!
//! This crate implements the primary contribution of *"Utility Maximizing
//! Thread Assignment and Resource Allocation"* (Lai, Fan, Zhang, Liu —
//! IPDPS 2016): simultaneously assigning `n` threads to `m` homogeneous
//! servers (each holding `C` units of one resource) and allocating each
//! server's resource among its threads, to maximize total utility.
//!
//! Contents, mapped to the paper:
//!
//! | Module | Paper section |
//! |---|---|
//! | [`problem`] | §III — model, assignments, feasibility |
//! | [`superopt`] | Definition V.1 — the super-optimal allocation/bound |
//! | [`linearize`] | §V-A, Equation 1 — two-segment linearization |
//! | [`algo1`] | §V-B, Algorithm 1 — `O(mn² + n(log mC)²)` greedy |
//! | [`algo2`] | §VI, Algorithm 2 — `O(n(log mC)²)` sort + heap |
//! | [`heuristics`] | §VII — the UU / UR / RU / RR baselines |
//! | [`exact`] | used to certify the "99% of optimal" claims (§VII) |
//! | [`exact_bb`] | branch-and-bound exact solver (larger instances) |
//! | [`reduction`] | Theorem IV.1 — PARTITION → AA NP-hardness reduction |
//! | [`tightness`] | Theorem V.17 — the 5/6-ratio tight instance |
//! | [`solver`] | uniform [`Solver`](solver::Solver) interface over all of the above |
//! | [`ablation`] | design-choice ablations (not in the paper) |
//! | [`refine`] | exact per-server re-split post-pass (not in the paper) |
//! | [`discrete`] | integer-unit allocations with optimal per-server rounding (not in the paper) |
//! | [`stats`] | fairness / balance diagnostics for assignments |
//! | [`hetero`] | §VIII future work: heterogeneous capacities |
//! | [`online`] | §VIII future work: drifting utilities, local repair |
//! | [`churn`] | cluster events (server loss/recovery, thread churn) and budgeted repair (not in the paper) |
//! | [`incremental`] | warm-started incremental Algorithm 2 for the online hot path (not in the paper) |
//!
//! Both approximation algorithms guarantee total utility at least
//! [`ALPHA`]` = 2(√2 − 1) ≈ 0.828` times the optimum (Theorems V.16 and
//! VI.1); in the paper's experiments — reproduced in `aa-experiments` —
//! they land above 97.5% of the super-optimal *upper bound* everywhere.

pub mod ablation;
pub mod algo1;
pub mod algo2;
pub mod budget;
pub mod churn;
pub mod discrete;
pub mod exact;
pub mod exact_bb;
pub mod fleet;
pub mod hetero;
pub mod heuristics;
pub mod incremental;
pub mod linearize;
pub mod online;
pub mod price;
pub mod problem;
pub mod reduction;
pub mod refine;
pub mod ring;
pub mod shard;
pub mod solver;
pub mod stats;
pub mod superopt;
pub mod tiered;
pub mod tightness;

pub use budget::Budget;
pub use churn::{ClusterEvent, MigrationBudget, Repair, RepairArena, RepairError, RepairReport};
pub use incremental::{IncrementalStats, SolveMode, SolverArena, WarmState};
pub use fleet::{
    Backoff, FleetRouter, FrameError, PendingEntry, PendingMap, RouteDecision,
};
pub use price::{PriceOpts, PriceStats, PriceWarmState};
pub use problem::{Assignment, AssignmentError, Problem, ProblemBuilder, ProblemError};
pub use ring::Ring;
pub use shard::{
    ChaosHook, FaultAction, ShardCompletion, ShardConfig, ShardError, ShardJob, ShardPool,
    SubmitError,
};
pub use solver::{batch_seed, solve_batch, try_solve_batch, SolveError, Solver, SolverBackend};
pub use tiered::{Degradation, Tier, TierOutcome, TierStatus, TieredSolve, TieredSolver};

/// The approximation ratio `α = 2(√2 − 1) ≈ 0.8284` guaranteed by
/// Algorithms 1 and 2 (Theorems V.16 and VI.1).
pub const ALPHA: f64 = 2.0 * (std::f64::consts::SQRT_2 - 1.0);

/// Workspace-wide absolute/relative tolerance for resource comparisons.
pub const EPS: f64 = 1e-9;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alpha_matches_paper_value() {
        let alpha = std::hint::black_box(ALPHA);
        assert!(alpha > 0.828 && alpha < 0.829);
    }
}
