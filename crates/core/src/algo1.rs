//! Algorithm 1 (paper §V-B): greedy assignment on linearized utilities.
//!
//! Each iteration considers the set `U` of (thread, server) pairs where
//! the server still has room for the thread's full super-optimal
//! allocation `ĉ_i`. If `U` is nonempty, the unassigned thread with the
//! greatest linearized utility `g_i(ĉ_i)` is placed with its full `ĉ_i`
//! ("full" threads, set `D` in the analysis). Otherwise the thread that
//! gets the most utility from any server's leftovers is placed with all of
//! that server's remaining resource ("unfull" threads, set `E`).
//!
//! Guarantees `F ≥ α·F*` with `α = 2(√2 − 1)` (Theorem V.16) in
//! `O(mn² + n(log mC)²)` time (Theorem V.18) — the `n(log mC)²` term is
//! the super-optimal allocation computed by `aa-allocator`.

use aa_utility::{Linearized, Utility};

use crate::budget::Budget;
use crate::linearize::{linearize, linearize_par};
use crate::problem::{Assignment, Problem};
use crate::solver::SolveError;
use crate::superopt::{super_optimal, super_optimal_budgeted, super_optimal_par, SuperOptimal};

/// Run the complete Algorithm 1 pipeline: super-optimal allocation →
/// linearization → greedy assignment.
pub fn solve(problem: &Problem) -> Assignment {
    let _span = aa_obs::span!("algo1");
    let so = super_optimal(problem);
    let gs = linearize(problem, &so);
    assign_with(problem, &so, &gs)
}

/// [`solve`] with the super-optimal allocation and linearization fanned
/// out over the thread pool; the `O(mn²)`-flavor greedy itself stays
/// sequential (it is inherently order-dependent). **Bit-identical** to
/// [`solve`] for every thread count — the pool materializes per-thread
/// values in index order and reduces sequentially — which the
/// differential test suite asserts exactly.
pub fn solve_par(problem: &Problem) -> Assignment {
    let _span = aa_obs::span!("algo1");
    let so = super_optimal_par(problem);
    let gs = linearize_par(problem, &so);
    assign_with(problem, &so, &gs)
}

/// [`solve_par`] under a solve [`Budget`]: the super-optimal bisection
/// checks the budget per iteration (and its pool fan-outs watch the
/// budget's cancel token), and the greedy assignment checks it once per
/// round. While the budget holds the result is **bit-identical** to
/// [`solve_par`] (and hence [`solve`]); expiry surfaces as
/// [`SolveError::DeadlineExceeded`], external cancellation as
/// [`SolveError::Cancelled`] — never a half-built assignment.
pub fn solve_budgeted(problem: &Problem, budget: &Budget) -> Result<Assignment, SolveError> {
    let _span = aa_obs::span!("algo1");
    let so = super_optimal_budgeted(problem, budget)?;
    budget.check()?;
    let gs = linearize_par(problem, &so);
    assign_with_budgeted(problem, &so, &gs, budget)
}

/// The greedy assignment phase, given precomputed `ĉ` and `g`.
///
/// Tie-breaking (the paper allows any): among equal-utility threads the
/// lowest index wins; among equally-attractive servers the one with the
/// most remaining resource wins, then the lowest index. Deterministic.
pub fn assign_with(problem: &Problem, so: &SuperOptimal, gs: &[Linearized]) -> Assignment {
    match assign_impl(problem, so, gs, None) {
        Ok(a) => a,
        Err(_) => unreachable!("unbudgeted assignment cannot fail"),
    }
}

/// [`assign_with`] with a per-round budget check. Bit-identical to
/// [`assign_with`] while the budget holds — the check does not touch the
/// greedy's numerics or tie-breaking.
pub fn assign_with_budgeted(
    problem: &Problem,
    so: &SuperOptimal,
    gs: &[Linearized],
    budget: &Budget,
) -> Result<Assignment, SolveError> {
    assign_impl(problem, so, gs, Some(budget))
}

/// Shared greedy core; `budget: None` never fails.
fn assign_impl(
    problem: &Problem,
    so: &SuperOptimal,
    gs: &[Linearized],
    budget: Option<&Budget>,
) -> Result<Assignment, SolveError> {
    let n = problem.len();
    let m = problem.servers();
    assert_eq!(so.amounts.len(), n, "ĉ must cover every thread");
    assert_eq!(gs.len(), n, "g must cover every thread");

    let mut remaining: Vec<f64> = vec![problem.capacity(); m];
    let mut unassigned: Vec<bool> = vec![true; n];
    let mut server = vec![0_usize; n];
    let mut amount = vec![0.0_f64; n];

    for _round in 0..n {
        if let Some(b) = budget {
            b.check()?;
        }
        // The server with the most remaining resource (ties: lowest index).
        let (j_max, &c_max) = remaining
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1).then_with(|| b.0.cmp(&a.0)))
            .expect("at least one server");

        // Line 4–7: full candidates — threads whose ĉ fits somewhere.
        // Fitting anywhere is equivalent to fitting on the fullest-capacity
        // server, so one scan suffices (this is what makes the loop body
        // O(n + m) instead of O(nm); the paper's statement of O(mn²)
        // bounds the naive pair enumeration).
        let mut best: Option<(f64, usize)> = None;
        for i in 0..n {
            if !unassigned[i] || so.amounts[i] > c_max {
                continue;
            }
            let u = gs[i].value(so.amounts[i]);
            if best.is_none_or(|(bu, bi)| u > bu || (u == bu && i < bi)) {
                best = Some((u, i));
            }
        }

        if let Some((_, i)) = best {
            // Full assignment: give thread i its ĉ_i on a server that has
            // room; we use the max-remaining server (any choice with
            // C_j ≥ ĉ_i yields the same utility g_i(ĉ_i)).
            unassigned[i] = false;
            server[i] = j_max;
            amount[i] = so.amounts[i];
            remaining[j_max] -= so.amounts[i];
            continue;
        }

        // Line 8–10: no thread fits fully anywhere. Pick the (thread,
        // server) pair maximizing g_i(C_j); since every g_i is
        // nondecreasing the best server for any thread is the fullest one.
        let mut best_unfull: Option<(f64, usize)> = None;
        for i in 0..n {
            if !unassigned[i] {
                continue;
            }
            let u = gs[i].value(c_max);
            if best_unfull.is_none_or(|(bu, bi)| u > bu || (u == bu && i < bi)) {
                best_unfull = Some((u, i));
            }
        }
        let (_, i) = best_unfull.expect("loop runs once per unassigned thread");
        unassigned[i] = false;
        server[i] = j_max;
        amount[i] = c_max;
        remaining[j_max] = 0.0;
    }

    Ok(Assignment { server, amount })
}

/// A literal transcription of the paper's Algorithm 1 pseudocode —
/// `U = {(i, j) : C_j ≥ ĉ_i}` materialized every round, `O(mn)` per
/// iteration, `O(mn²)` total — kept as an executable specification.
///
/// [`assign_with`] is the optimized equivalent (it exploits that a
/// thread fits *somewhere* iff it fits on the max-remaining server). The
/// two must produce identical assignments under the same tie-breaking;
/// tests and the bench suite compare them.
pub fn assign_with_reference(
    problem: &Problem,
    so: &SuperOptimal,
    gs: &[Linearized],
) -> Assignment {
    let n = problem.len();
    let m = problem.servers();
    assert_eq!(so.amounts.len(), n, "ĉ must cover every thread");
    assert_eq!(gs.len(), n, "g must cover every thread");

    let mut remaining: Vec<f64> = vec![problem.capacity(); m];
    let mut unassigned: Vec<bool> = vec![true; n];
    let mut server = vec![0_usize; n];
    let mut amount = vec![0.0_f64; n];

    for _round in 0..n {
        // Line 4: U ← {(i, j) | i unassigned, C_j ≥ ĉ_i}.
        let mut u_pairs: Vec<(usize, usize)> = Vec::new();
        for (i, &open) in unassigned.iter().enumerate() {
            if !open {
                continue;
            }
            for (j, &room) in remaining.iter().enumerate() {
                if room >= so.amounts[i] {
                    u_pairs.push((i, j));
                }
            }
        }

        let (i, j, c) = if !u_pairs.is_empty() {
            // Line 6: thread in U with the greatest utility at its
            // super-optimal allocation (ties: lowest thread index), on
            // the feasible server with most remaining resource (ties:
            // lowest index) — matching `assign_with`'s tie-break.
            let &(i, _) = u_pairs
                .iter()
                .max_by(|a, b| {
                    let ua = gs[a.0].value(so.amounts[a.0]);
                    let ub = gs[b.0].value(so.amounts[b.0]);
                    ua.total_cmp(&ub).then_with(|| b.0.cmp(&a.0))
                })
                .expect("nonempty");
            let j = (0..m)
                .filter(|&j| remaining[j] >= so.amounts[i])
                .max_by(|&a, &b| {
                    remaining[a].total_cmp(&remaining[b]).then_with(|| b.cmp(&a))
                })
                .expect("some server fits i by membership in U");
            (i, j, so.amounts[i])
        } else {
            // Line 9: pair (i, j) maximizing g_i(C_j).
            let mut best: Option<(f64, usize, usize)> = None;
            for i in 0..n {
                if !unassigned[i] {
                    continue;
                }
                for j in 0..m {
                    let u = gs[i].value(remaining[j]);
                    let better = match best {
                        None => true,
                        Some((bu, bi, bj)) => {
                            u > bu
                                || (u == bu
                                    && (i < bi
                                        || (i == bi
                                            && remaining[j]
                                                .total_cmp(&remaining[bj])
                                                .then_with(|| bj.cmp(&j))
                                                .is_gt())))
                        }
                    };
                    if better {
                        best = Some((u, i, j));
                    }
                }
            }
            let (_, i, j) = best.expect("loop runs once per unassigned thread");
            (i, j, remaining[j])
        };

        unassigned[i] = false;
        server[i] = j;
        amount[i] = c;
        remaining[j] -= c;
    }

    Assignment { server, amount }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use aa_utility::{CappedLinear, LogUtility, Power};

    use crate::ALPHA;

    fn arc<U: Utility + 'static>(u: U) -> aa_utility::DynUtility {
        Arc::new(u)
    }

    #[test]
    fn single_thread_gets_everything() {
        let p = Problem::builder(2, 10.0)
            .thread(arc(Power::new(1.0, 0.5, 10.0)))
            .build()
            .unwrap();
        let a = solve(&p);
        a.validate(&p).unwrap();
        assert_eq!(a.amount[0], 10.0);
    }

    #[test]
    fn one_thread_per_server_when_counts_match() {
        // β = 1: each thread lands alone and saturates its server.
        let p = Problem::builder(3, 10.0)
            .threads((0..3).map(|i| arc(Power::new(1.0 + i as f64, 0.5, 10.0))))
            .build()
            .unwrap();
        let a = solve(&p);
        a.validate(&p).unwrap();
        let mut servers: Vec<usize> = a.server.clone();
        servers.sort_unstable();
        assert_eq!(servers, vec![0, 1, 2]);
        for &c in &a.amount {
            assert!((c - 10.0).abs() < 1e-6);
        }
    }

    #[test]
    fn respects_capacity() {
        let p = Problem::builder(2, 5.0)
            .threads((0..7).map(|i| arc(LogUtility::new(1.0 + i as f64, 0.5, 5.0))))
            .build()
            .unwrap();
        let a = solve(&p);
        a.validate(&p).unwrap();
    }

    #[test]
    fn meets_alpha_against_superopt_on_adversarial_instances() {
        // Capped-linear utilities exercise the unfull-thread path hard.
        let p = Problem::builder(2, 1.0)
            .thread(arc(CappedLinear::new(2.0, 0.5, 1.0)))
            .thread(arc(CappedLinear::new(2.0, 0.5, 1.0)))
            .thread(arc(Power::new(1.0, 1.0, 1.0)))
            .build()
            .unwrap();
        let so = super_optimal(&p);
        let a = solve(&p);
        a.validate(&p).unwrap();
        assert!(
            a.total_utility(&p) >= ALPHA * so.utility - 1e-9,
            "utility {} below α·F̂ = {}",
            a.total_utility(&p),
            ALPHA * so.utility
        );
    }

    #[test]
    fn full_threads_get_their_superoptimal_share() {
        // Lemma V.8: the first m assigned threads are full. With β = 1
        // every thread is full, so all allocations equal ĉ.
        let p = Problem::builder(4, 10.0)
            .threads((0..4).map(|i| arc(Power::new(1.0 + i as f64, 0.5, 10.0))))
            .build()
            .unwrap();
        let so = super_optimal(&p);
        let a = solve(&p);
        for (c, c_hat) in a.amount.iter().zip(&so.amounts) {
            assert!((c - c_hat).abs() < 1e-6);
        }
    }

    #[test]
    fn at_most_one_unfull_thread_per_server() {
        // Lemma V.5 on a crowded instance.
        let p = Problem::builder(3, 6.0)
            .threads((0..12).map(|i| arc(LogUtility::new(1.0 + (i % 5) as f64, 1.0, 6.0))))
            .build()
            .unwrap();
        let so = super_optimal(&p);
        let a = solve(&p);
        a.validate(&p).unwrap();
        let mut unfull_per_server = [0_usize; 3];
        for i in 0..p.len() {
            if a.amount[i] < so.amounts[i] - 1e-9 {
                unfull_per_server[a.server[i]] += 1;
            }
        }
        for (j, &k) in unfull_per_server.iter().enumerate() {
            assert!(k <= 1, "server {j} has {k} unfull threads");
        }
    }

    #[test]
    fn deterministic() {
        let p = Problem::builder(2, 7.0)
            .threads((0..9).map(|i| arc(Power::new(1.0 + (i % 3) as f64, 0.5, 7.0))))
            .build()
            .unwrap();
        let a = solve(&p);
        let b = solve(&p);
        assert_eq!(a, b);
    }

    #[test]
    fn solve_par_is_bit_identical() {
        let p = Problem::builder(3, 6.0)
            .threads((0..40).map(|i| arc(Power::new(1.0 + (i % 5) as f64, 0.6, 6.0))))
            .build()
            .unwrap();
        let seq = solve(&p);
        for threads in [1, 2, 8] {
            let par = rayon::with_threads(threads, || solve_par(&p));
            assert_eq!(seq, par, "{threads} threads");
        }
    }

    #[test]
    fn budgeted_solve_matches_plain_and_types_expiry() {
        let p = Problem::builder(2, 7.0)
            .threads((0..9).map(|i| arc(Power::new(1.0 + (i % 3) as f64, 0.5, 7.0))))
            .build()
            .unwrap();
        let plain = solve(&p);
        let roomy = solve_budgeted(&p, &crate::Budget::unlimited()).unwrap();
        assert_eq!(plain, roomy);
        // Enough fuel to finish the super-optimal bisection but not the
        // greedy: expiry mid-assignment is typed, never a partial result.
        for fuel in [0, 1, 3, 50, 130, 135] {
            match solve_budgeted(&p, &crate::Budget::with_fuel(fuel)) {
                Ok(a) => assert_eq!(a, plain, "fuel {fuel}"),
                Err(e) => assert_eq!(e, SolveError::DeadlineExceeded, "fuel {fuel}"),
            }
        }
    }

    #[test]
    fn optimized_matches_literal_pseudocode() {
        // The O(n+m)-per-round implementation must agree, assignment for
        // assignment, with the paper's O(mn)-per-round transcription on a
        // spread of instance shapes (smooth, kinked, crowded, sparse).
        let shapes: Vec<Problem> = vec![
            Problem::builder(2, 7.0)
                .threads((0..9).map(|i| arc(Power::new(1.0 + (i % 3) as f64, 0.5, 7.0))))
                .build()
                .unwrap(),
            Problem::builder(3, 4.0)
                .threads((0..11).map(|i| {
                    arc(CappedLinear::new(1.0 + (i % 4) as f64, 1.5, 4.0))
                }))
                .build()
                .unwrap(),
            Problem::builder(4, 10.0)
                .threads((0..3).map(|i| arc(LogUtility::new(2.0 + i as f64, 1.0, 10.0))))
                .build()
                .unwrap(),
            crate::tightness::instance(),
        ];
        for (k, p) in shapes.iter().enumerate() {
            let so = super_optimal(p);
            let gs = linearize(p, &so);
            let fast = assign_with(p, &so, &gs);
            let slow = assign_with_reference(p, &so, &gs);
            assert_eq!(fast, slow, "instance {k} diverged");
        }
    }
}
