//! Property tests pinning the paper's structural lemmas on adversarial
//! (kinked, capped-linear) instances — the regime where Algorithm 2's
//! ordering decisions actually bind.

use std::sync::Arc;

use aa_core::linearize::linearize;
use aa_core::superopt::super_optimal;
use aa_core::{algo2, discrete, refine, Problem};
use aa_utility::{CappedLinear, DynUtility, Utility};
use proptest::prelude::*;

/// Problems made only of capped-linear utilities: every kink is a place
/// where the greedy can strand resource, and unfull threads are common.
fn capped_problem() -> impl Strategy<Value = Problem> {
    (
        2usize..5,
        prop::collection::vec((0.2..10.0f64, 0.05..1.0f64), 3..14),
        2.0..50.0f64,
    )
        .prop_map(|(m, raw, cap)| {
            let threads: Vec<DynUtility> = raw
                .iter()
                .map(|&(slope, knee_frac)| {
                    Arc::new(CappedLinear::new(slope, knee_frac * cap, cap)) as DynUtility
                })
                .collect();
            Problem::new(m, cap, threads).unwrap()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Lemma V.5: at most one unfull thread per server.
    #[test]
    fn lemma_v5_one_unfull_per_server(p in capped_problem()) {
        let so = super_optimal(&p);
        let a = algo2::solve(&p);
        let mut unfull = vec![0usize; p.servers()];
        for i in 0..p.len() {
            if a.amount[i] < so.amounts[i] - 1e-9 * so.amounts[i].max(1.0) {
                unfull[a.server[i]] += 1;
            }
        }
        prop_assert!(unfull.iter().all(|&k| k <= 1), "{unfull:?}");
    }

    /// Lemma V.10: among unfull threads, higher linearized density ⇒
    /// weakly more resource.
    #[test]
    fn lemma_v10_density_orders_unfull_allocations(p in capped_problem()) {
        let so = super_optimal(&p);
        let gs = linearize(&p, &so);
        let a = algo2::assign_with(&p, &so, &gs);
        let unfull: Vec<usize> = (0..p.len())
            .filter(|&i| a.amount[i] < so.amounts[i] - 1e-9 * so.amounts[i].max(1.0))
            .collect();
        for &i in &unfull {
            for &j in &unfull {
                if gs[i].density() > gs[j].density() + 1e-9 {
                    prop_assert!(
                        a.amount[i] >= a.amount[j] - 1e-9,
                        "density({i}) = {} > density({j}) = {} but c_{i} = {} < c_{j} = {}",
                        gs[i].density(), gs[j].density(), a.amount[i], a.amount[j]
                    );
                }
            }
        }
    }

    /// Lemma V.8 consequence: at least min(m, n) full threads.
    #[test]
    fn lemma_v8_at_least_m_full_threads(p in capped_problem()) {
        let so = super_optimal(&p);
        let a = algo2::solve(&p);
        let full = (0..p.len())
            .filter(|&i| (a.amount[i] - so.amounts[i]).abs() <= 1e-9 * so.amounts[i].max(1.0))
            .count();
        prop_assert!(full >= p.servers().min(p.len()), "only {full} full threads");
    }

    /// Theorem VI.1 on the kinked family, against the bound.
    #[test]
    fn alpha_guarantee_on_kinked_instances(p in capped_problem()) {
        let bound = super_optimal(&p).utility;
        let u = algo2::solve(&p).total_utility(&p);
        prop_assert!(u >= aa_core::ALPHA * bound - 1e-6 * bound.max(1.0));
        prop_assert!(u <= bound + 1e-6 * bound.max(1.0));
    }

    /// Refinement (extension): never hurts, never moves threads, never
    /// exceeds the bound.
    #[test]
    fn refinement_monotone_on_kinked_instances(p in capped_problem()) {
        let raw = algo2::solve(&p);
        let polished = refine::refine_allocation(&p, &raw);
        prop_assert!(polished.validate(&p).is_ok());
        prop_assert_eq!(&polished.server, &raw.server);
        prop_assert!(
            polished.total_utility(&p) >= raw.total_utility(&p) - 1e-9,
            "refinement lost utility"
        );
        let bound = super_optimal(&p).utility;
        prop_assert!(polished.total_utility(&p) <= bound + 1e-6 * bound.max(1.0));
    }

    /// Discrete rounding (extension): on-grid, feasible, placement
    /// preserved, and at least as good as utility-blind rounding.
    #[test]
    fn discrete_rounding_properties(p in capped_problem(), unit_frac in 0.05..0.5f64) {
        let unit = unit_frac * p.capacity();
        let cont = algo2::solve(&p);
        let disc = discrete::round_assignment(&p, &cont, unit);
        prop_assert!(disc.validate(&p).is_ok());
        prop_assert_eq!(&disc.server, &cont.server);
        for &c in &disc.amount {
            let k = c / unit;
            prop_assert!((k - k.round()).abs() < 1e-6, "{c} not on grid {unit}");
        }
        let naive = discrete::round_largest_remainder(&p, &cont, unit);
        prop_assert!(
            disc.total_utility(&p) >= naive.total_utility(&p) - 1e-9,
            "greedy rounding lost to largest-remainder"
        );
    }

    /// Hetero (extension): equal capacities reproduce Algorithm 2 exactly.
    #[test]
    fn hetero_reduces_to_homogeneous(p in capped_problem()) {
        let hp = aa_core::hetero::HeteroProblem::new(
            vec![p.capacity(); p.servers()],
            p.threads().to_vec(),
        ).unwrap();
        let ha = aa_core::hetero::solve(&hp);
        let a = algo2::solve(&p);
        prop_assert!(
            (ha.total_utility(&hp) - a.total_utility(&p)).abs()
                <= 1e-9 * a.total_utility(&p).max(1.0)
        );
    }

    /// Linearization sanity on the kinked family: g ≤ f pointwise and
    /// g(ĉ) = f(ĉ).
    #[test]
    fn linearization_bounds_on_kinked(p in capped_problem()) {
        let so = super_optimal(&p);
        let gs = linearize(&p, &so);
        for (i, g) in gs.iter().enumerate() {
            let f = &p.threads()[i];
            for k in 0..=16 {
                let x = p.capacity() * k as f64 / 16.0;
                prop_assert!(f.value(x) >= g.value(x) - 1e-9 * f.max_value().max(1.0));
            }
            prop_assert!(
                (g.value(so.amounts[i]) - f.value(so.amounts[i])).abs()
                    <= 1e-9 * f.max_value().max(1.0)
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The optimized Algorithm 1 and the literal pseudocode transcription
    /// agree assignment-for-assignment on random kinked instances.
    #[test]
    fn algo1_optimized_equals_reference(p in capped_problem()) {
        use aa_core::algo1;
        let so = super_optimal(&p);
        let gs = linearize(&p, &so);
        let fast = algo1::assign_with(&p, &so, &gs);
        let slow = algo1::assign_with_reference(&p, &so, &gs);
        prop_assert_eq!(fast, slow);
    }
}
