//! Property-based verification of the budget/cancellation safety
//! contract.
//!
//! For random small problems and random fuel levels (fuel is the
//! deterministic stand-in for a wall-clock deadline — same sticky
//! expiry, same checkpoints, reproducible from the proptest seed):
//!
//! * every budgeted solve path either completes **bit-identical** to
//!   its unbudgeted twin or fails with a typed budget error — never a
//!   panic, never an infeasible or half-finished assignment;
//! * the tiered solver never errors on expiry (the uu floor absorbs
//!   it) and always returns a feasible assignment at least as good as
//!   uu;
//! * cancelling the token at a random point yields `Cancelled`, not a
//!   corrupt result;
//! * with unlimited budget, the approximate tiered ladder is
//!   bit-identical to the `Algo2Refined` solver.

use std::sync::Arc;

use aa_core::solver::{Algo2Refined, SolveError, Solver};
use aa_core::{algo2, exact_bb, heuristics, refine, Budget, Problem, Tier, TieredSolver};
use aa_utility::{CappedLinear, DynUtility, LogUtility, Power};
use proptest::prelude::*;

/// Strategy: a random concave utility of a random family.
fn any_utility(cap: f64) -> impl Strategy<Value = DynUtility> {
    prop_oneof![
        (0.1..10.0f64, 0.2..1.0f64)
            .prop_map(move |(s, b)| Arc::new(Power::new(s, b, cap)) as DynUtility),
        (0.1..10.0f64, 0.1..4.0f64)
            .prop_map(move |(s, r)| Arc::new(LogUtility::new(s, r, cap)) as DynUtility),
        (0.1..10.0f64, 0.05..1.0f64)
            .prop_map(move |(s, k)| Arc::new(CappedLinear::new(s, k * cap, cap)) as DynUtility),
    ]
}

/// Strategy: a small random AA problem.
fn small_problem() -> impl Strategy<Value = Problem> {
    (2usize..5, 2usize..9, 1.0..20.0f64).prop_flat_map(|(m, n, cap)| {
        prop::collection::vec(any_utility(cap), n)
            .prop_map(move |threads| Problem::new(m, cap, threads).unwrap())
    })
}

proptest! {
    /// Budgeted Algorithm 2 at a random fuel level: either the exact
    /// unbudgeted answer or a typed expiry. Nothing in between.
    #[test]
    fn algo2_budgeted_is_all_or_typed_nothing(p in small_problem(), fuel in 0u64..600) {
        let plain = algo2::solve(&p);
        match algo2::solve_budgeted(&p, &Budget::with_fuel(fuel)) {
            Ok(a) => prop_assert_eq!(a, plain),
            Err(e) => prop_assert_eq!(e, SolveError::DeadlineExceeded),
        }
    }

    /// Same contract one level up: budgeted Algorithm 2 + re-split.
    #[test]
    fn refined_budgeted_is_all_or_typed_nothing(p in small_problem(), fuel in 0u64..900) {
        let plain = refine::solve_refined(&p);
        match refine::solve_refined_budgeted(&p, &Budget::with_fuel(fuel)) {
            Ok(a) => prop_assert_eq!(a, plain),
            Err(e) => prop_assert_eq!(e, SolveError::DeadlineExceeded),
        }
    }

    /// Anytime branch-and-bound: any fuel level yields a feasible
    /// incumbent at least as good as its seed, or a typed expiry of the
    /// seed itself. Proven-optimal answers match the unbudgeted search.
    #[test]
    fn branch_and_bound_budgeted_is_anytime_safe(p in small_problem(), fuel in 0u64..3000) {
        let seed_utility = refine::solve_refined(&p).total_utility(&p);
        match exact_bb::solve_budgeted(&p, &Budget::with_fuel(fuel)) {
            Ok(b) => {
                b.assignment.validate(&p).unwrap();
                let u = b.assignment.total_utility(&p);
                prop_assert!(u >= seed_utility - 1e-9);
                if b.optimal {
                    let opt = exact_bb::solve(&p).total_utility(&p);
                    prop_assert!((u - opt).abs() < 1e-9);
                }
            }
            Err(e) => prop_assert_eq!(e, SolveError::DeadlineExceeded),
        }
    }

    /// The tiered solver never errors on expiry: any fuel level returns
    /// a feasible assignment at least as good as the uu floor.
    #[test]
    fn tiered_never_fails_under_any_fuel_level(p in small_problem(), fuel in 0u64..2000) {
        let solver = TieredSolver::new();
        let solved = solver.solve_within(&p, &Budget::with_fuel(fuel)).unwrap();
        solved.assignment.validate(&p).unwrap();
        let floor = heuristics::uu(&p).total_utility(&p);
        prop_assert!(solved.utility >= floor - 1e-9);
        // The report names the tier that actually answered.
        let last = solved.degradation.outcomes.last().unwrap();
        prop_assert_eq!(last.tier, solved.degradation.tier);
        prop_assert_eq!(last.utility, Some(solved.utility));
    }

    /// Cancelling the token "at a random point" — modelled as expiring
    /// fuel rewired to an external cancel — must surface as `Cancelled`,
    /// never a panic or a wrong answer. We emulate the race by
    /// cancelling before the solve at a random request position in a
    /// sequence of successful solves.
    #[test]
    fn random_point_cancellation_is_typed(p in small_problem(), cancel_at in 0usize..4) {
        let solver = TieredSolver::new();
        for round in 0..4 {
            let budget = Budget::unlimited();
            if round == cancel_at {
                budget.cancel_token().cancel();
                prop_assert_eq!(
                    solver.solve_within(&p, &budget).unwrap_err(),
                    SolveError::Cancelled
                );
            } else {
                let solved = solver.solve_within(&p, &budget).unwrap();
                solved.assignment.validate(&p).unwrap();
            }
        }
    }

    /// With unlimited budget the approximate ladder is bit-identical to
    /// the plain `Algo2Refined` solver: the budget plumbing shares the
    /// unbudgeted code paths exactly.
    #[test]
    fn unlimited_tiered_approximate_matches_algo2_refined(p in small_problem()) {
        let solver = TieredSolver::approximate();
        let tiered = solver.solve_within(&p, &Budget::unlimited()).unwrap();
        prop_assert_eq!(tiered.assignment, Algo2Refined.solve(&p));
        prop_assert_eq!(tiered.degradation.tier, Tier::Algo2Refined);
        prop_assert!(!tiered.degradation.degraded);
    }
}
