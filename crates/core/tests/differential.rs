//! Differential tests of the parallel solve path.
//!
//! The determinism contract: parallelism may change timing, never
//! output. For random instances, every parallel entry point —
//! Algorithm 1, Algorithm 2, the batched solver fan-out — must produce
//! assignments, allocations, and total utilities **exactly equal**
//! (`assert_eq!`, not within-tolerance) to the sequential oracle at
//! 1, 2, and 8 pool threads. The vendored rayon earns this by
//! materializing per-index results in input order and reducing
//! sequentially on the calling thread.

use std::sync::Arc;

use aa_core::solver::{solve_batch, Algo2, Rr, Solver};
use aa_core::{algo1, algo2, batch_seed, superopt, Problem};
use aa_utility::{CappedLinear, DynUtility, LogUtility, Power};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Thread counts every differential property is checked at. 1 exercises
/// the inline path, 2 the minimal fan-out, 8 oversubscribes this
/// container's cores so chunk interleaving is adversarial.
const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn any_utility(cap: f64) -> impl Strategy<Value = DynUtility> {
    prop_oneof![
        (0.1..10.0f64, 0.2..1.0f64)
            .prop_map(move |(s, b)| Arc::new(Power::new(s, b, cap)) as DynUtility),
        (0.1..10.0f64, 0.1..4.0f64)
            .prop_map(move |(s, r)| Arc::new(LogUtility::new(s, r, cap)) as DynUtility),
        (0.1..10.0f64, 0.05..1.0f64)
            .prop_map(move |(s, k)| Arc::new(CappedLinear::new(s, k * cap, cap)) as DynUtility),
    ]
}

fn any_problem() -> impl Strategy<Value = Problem> {
    (2usize..9, 1usize..40, 1.0..100.0f64).prop_flat_map(|(m, n, cap)| {
        prop::collection::vec(any_utility(cap), n)
            .prop_map(move |threads| Problem::new(m, cap, threads).unwrap())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn algo1_parallel_equals_sequential(p in any_problem()) {
        let seq = algo1::solve(&p);
        for threads in THREAD_COUNTS {
            let par = rayon::with_threads(threads, || algo1::solve_par(&p));
            prop_assert_eq!(&seq, &par, "algo1 diverged at {} threads", threads);
        }
    }

    #[test]
    fn algo2_parallel_equals_sequential(p in any_problem()) {
        let seq = algo2::solve(&p);
        for threads in THREAD_COUNTS {
            let par = rayon::with_threads(threads, || algo2::solve_par(&p));
            prop_assert_eq!(&seq, &par, "algo2 diverged at {} threads", threads);
        }
        // Total utility, the headline number, is bit-identical too.
        let u = seq.total_utility(&p);
        let up = rayon::with_threads(8, || algo2::solve_par(&p).total_utility(&p));
        prop_assert_eq!(u.to_bits(), up.to_bits());
    }

    #[test]
    fn superopt_parallel_equals_sequential(p in any_problem()) {
        let seq = superopt::super_optimal(&p);
        for threads in THREAD_COUNTS {
            let par = rayon::with_threads(threads, || superopt::super_optimal_par(&p));
            prop_assert_eq!(&seq, &par, "ĉ diverged at {} threads", threads);
        }
    }

    #[test]
    fn batched_solves_equal_the_sequential_loop(
        problems in prop::collection::vec(any_problem(), 1..6),
        seed in 0u64..u64::MAX,
    ) {
        // Deterministic and randomized solvers alike: batch fan-out must
        // reproduce the obvious sequential loop exactly, because each
        // instance's RNG stream is position-determined.
        let expect_algo2: Vec<_> = problems
            .iter()
            .map(|p| Algo2.solve_with(p, &mut StdRng::seed_from_u64(0)))
            .collect();
        let expect_rr: Vec<_> = problems
            .iter()
            .enumerate()
            .map(|(k, p)| {
                Rr.solve_with(p, &mut StdRng::seed_from_u64(batch_seed(seed, k)))
            })
            .collect();
        for threads in THREAD_COUNTS {
            let (got_algo2, got_rr) = rayon::with_threads(threads, || {
                (
                    solve_batch(&Algo2, &problems, seed),
                    solve_batch(&Rr, &problems, seed),
                )
            });
            prop_assert_eq!(&expect_algo2, &got_algo2, "algo2 batch at {} threads", threads);
            prop_assert_eq!(&expect_rr, &got_rr, "rr batch at {} threads", threads);
        }
    }
}

/// One deterministic instance above the allocator's parallel threshold,
/// so the pool path is guaranteed to run (the proptest instances above
/// are small and mostly exercise the delegation branch).
#[test]
fn large_instance_is_bit_identical_across_thread_counts() {
    let n = aa_allocator::par_threshold() + 321;
    let p = Problem::builder(16, 50.0)
        .threads((0..n).map(|i| {
            let s = 0.25 + (i % 101) as f64 * 0.07;
            if i % 3 == 0 {
                Arc::new(LogUtility::new(s, 0.4, 50.0)) as DynUtility
            } else {
                Arc::new(Power::new(s, 0.5 + (i % 4) as f64 * 0.1, 50.0)) as DynUtility
            }
        }))
        .build()
        .unwrap();
    let seq = algo2::solve(&p);
    for threads in THREAD_COUNTS {
        let par = rayon::with_threads(threads, || algo2::solve_par(&p));
        assert_eq!(seq, par, "{threads} threads");
    }
}
