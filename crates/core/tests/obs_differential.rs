//! Differential test of the observability layer itself.
//!
//! The bit-identity contract from DESIGN.md §9: enabling the span
//! collector may slow a solve down, but it must never change a single
//! bit of output — recording sits entirely outside solver arithmetic.
//! For random instances, every instrumented entry point is solved with
//! recording **off** (the oracle) and again with a live, enabled
//! collector, at 1, 2, and 8 pool threads, and the results must be
//! **exactly equal** (`assert_eq!`, not within-tolerance).
//!
//! The collector is process-global, so sibling tests toggling it
//! concurrently would race; every test in this binary serializes on
//! [`OBS_LOCK`] and runs one enable/disable discipline — the oracle
//! solves happen before the collector flips on, the observed solves
//! after.

use std::sync::{Arc, Mutex};

use aa_core::incremental::WarmState;
use aa_core::{algo2, Problem};
use aa_utility::{CappedLinear, DynUtility, LogUtility, Power};
use proptest::prelude::*;

/// Serializes collector enable/disable across the tests in this binary.
static OBS_LOCK: Mutex<()> = Mutex::new(());

/// Thread counts matching the main differential suite: inline path,
/// minimal fan-out, oversubscribed.
const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn any_utility(cap: f64) -> impl Strategy<Value = DynUtility> {
    prop_oneof![
        (0.1..10.0f64, 0.2..1.0f64)
            .prop_map(move |(s, b)| Arc::new(Power::new(s, b, cap)) as DynUtility),
        (0.1..10.0f64, 0.1..4.0f64)
            .prop_map(move |(s, r)| Arc::new(LogUtility::new(s, r, cap)) as DynUtility),
        (0.1..10.0f64, 0.05..1.0f64)
            .prop_map(move |(s, k)| Arc::new(CappedLinear::new(s, k * cap, cap)) as DynUtility),
    ]
}

fn any_problem() -> impl Strategy<Value = Problem> {
    (2usize..9, 1usize..40, 1.0..100.0f64).prop_flat_map(|(m, n, cap)| {
        prop::collection::vec(any_utility(cap), n)
            .prop_map(move |threads| Problem::new(m, cap, threads).unwrap())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn recording_is_bit_invisible_to_every_solve_path(p in any_problem()) {
        let _guard = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let collector = aa_obs::Collector::install();

        // Oracle pass: recording off.
        collector.set_enabled(false);
        let seq = algo2::solve(&p);
        let pars: Vec<_> = THREAD_COUNTS
            .iter()
            .map(|&t| rayon::with_threads(t, || algo2::solve_par(&p)))
            .collect();
        let mut warm_off = WarmState::new();
        let inc = algo2::solve_incremental(&p, &mut warm_off);
        let inc_again = algo2::solve_incremental(&p, &mut warm_off);

        // Observed pass: identical calls under a live collector.
        collector.set_enabled(true);
        let seq_on = algo2::solve(&p);
        prop_assert!(aa_obs::record_enabled(), "collector raced off mid-test");
        for (&threads, par_off) in THREAD_COUNTS.iter().zip(&pars) {
            let par_on = rayon::with_threads(threads, || algo2::solve_par(&p));
            prop_assert_eq!(par_off, &par_on, "solve_par diverged at {} threads", threads);
        }
        let mut warm_on = WarmState::new();
        let inc_on = algo2::solve_incremental(&p, &mut warm_on);
        let inc_on_again = algo2::solve_incremental(&p, &mut warm_on);
        collector.set_enabled(false);

        prop_assert_eq!(&seq, &seq_on, "algo2::solve diverged under recording");
        prop_assert_eq!(&inc, &inc_on, "cold incremental solve diverged under recording");
        prop_assert_eq!(&inc_again, &inc_on_again, "warm incremental solve diverged");
        // The headline number is bit-identical, not merely close.
        prop_assert_eq!(
            seq.total_utility(&p).to_bits(),
            seq_on.total_utility(&p).to_bits()
        );
    }
}

/// Pin the `aa_bisection_demand_maps_total` granularity: one increment
/// per whole-slice demand **sweep**, not per element. (Until bench
/// schema v4 the cold path counted nothing and the warm wrappers counted
/// per sweep; the batched-kernel rework made per-sweep the uniform
/// semantics everywhere.) The counts below are exact consequences of the
/// search structure, so any drift back to per-element — or a kernel path
/// that forgets to count — moves them by an order of magnitude.
#[test]
fn demand_maps_counter_is_per_sweep() {
    use aa_allocator::bisection::{allocate, allocate_generic};
    use aa_utility::Utility;

    let _guard = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let collector = aa_obs::Collector::install();
    collector.set_enabled(true);
    let counter = aa_obs::global().counter("aa_bisection_demand_maps_total");

    // All-discrete instance, single ladder knot: the flip needs exactly
    // 4 sweeps — D(knot), the verification at nextafter(knot), and the
    // two epilogue maps. Per-element accounting would report 8 (n = 2).
    let stair = vec![
        CappedLinear::new(1.0, 0.3, 10.0),
        CappedLinear::new(1.0, 0.3, 10.0),
    ];
    let before = counter.get();
    let _ = allocate(&stair, 0.25);
    assert_eq!(counter.get() - before, 4, "ladder path sweep count");

    // The generic reference arm on the same instance runs the full
    // bracket-growth + halving search: 2 growth sweeps, 52 halvings to
    // collapse the width-1 bracket onto the knot at 1.0, 2 epilogue
    // maps — an order of magnitude above the ladder's 4.
    let before = counter.get();
    let _ = allocate_generic(&stair, 0.25);
    assert_eq!(counter.get() - before, 56, "generic arm sweep count");

    // Smooth instance through the batched kernel: per-sweep magnitude
    // (≲ growth + 128 halvings + 2), far below per-element n × sweeps,
    // and exactly deterministic across identical solves.
    let smooth: Vec<Power> = (0..64).map(|_| Power::new(1.0, 0.5, 100.0)).collect();
    let budget = 0.5 * smooth.iter().map(|u| u.cap()).sum::<f64>();
    let before = counter.get();
    let _ = allocate(&smooth, budget);
    let first = counter.get() - before;
    let before = counter.get();
    let _ = allocate(&smooth, budget);
    let second = counter.get() - before;
    assert_eq!(first, second, "sweep count must be deterministic");
    assert!(
        (50..1000).contains(&first),
        "per-sweep magnitude expected, got {first} (per-element would be ≈64×)"
    );

    collector.set_enabled(false);
}
