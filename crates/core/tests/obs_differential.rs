//! Differential test of the observability layer itself.
//!
//! The bit-identity contract from DESIGN.md §9: enabling the span
//! collector may slow a solve down, but it must never change a single
//! bit of output — recording sits entirely outside solver arithmetic.
//! For random instances, every instrumented entry point is solved with
//! recording **off** (the oracle) and again with a live, enabled
//! collector, at 1, 2, and 8 pool threads, and the results must be
//! **exactly equal** (`assert_eq!`, not within-tolerance).
//!
//! This file deliberately contains a single `proptest!` block driven
//! from one `#[test]`-like property set: the collector is
//! process-global, so sibling tests toggling it concurrently would
//! race. Everything runs through one enable/disable discipline — the
//! oracle solves happen before the collector flips on, the observed
//! solves after.

use std::sync::Arc;

use aa_core::incremental::WarmState;
use aa_core::{algo2, Problem};
use aa_utility::{CappedLinear, DynUtility, LogUtility, Power};
use proptest::prelude::*;

/// Thread counts matching the main differential suite: inline path,
/// minimal fan-out, oversubscribed.
const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn any_utility(cap: f64) -> impl Strategy<Value = DynUtility> {
    prop_oneof![
        (0.1..10.0f64, 0.2..1.0f64)
            .prop_map(move |(s, b)| Arc::new(Power::new(s, b, cap)) as DynUtility),
        (0.1..10.0f64, 0.1..4.0f64)
            .prop_map(move |(s, r)| Arc::new(LogUtility::new(s, r, cap)) as DynUtility),
        (0.1..10.0f64, 0.05..1.0f64)
            .prop_map(move |(s, k)| Arc::new(CappedLinear::new(s, k * cap, cap)) as DynUtility),
    ]
}

fn any_problem() -> impl Strategy<Value = Problem> {
    (2usize..9, 1usize..40, 1.0..100.0f64).prop_flat_map(|(m, n, cap)| {
        prop::collection::vec(any_utility(cap), n)
            .prop_map(move |threads| Problem::new(m, cap, threads).unwrap())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn recording_is_bit_invisible_to_every_solve_path(p in any_problem()) {
        let collector = aa_obs::Collector::install();

        // Oracle pass: recording off.
        collector.set_enabled(false);
        let seq = algo2::solve(&p);
        let pars: Vec<_> = THREAD_COUNTS
            .iter()
            .map(|&t| rayon::with_threads(t, || algo2::solve_par(&p)))
            .collect();
        let mut warm_off = WarmState::new();
        let inc = algo2::solve_incremental(&p, &mut warm_off);
        let inc_again = algo2::solve_incremental(&p, &mut warm_off);

        // Observed pass: identical calls under a live collector.
        collector.set_enabled(true);
        let seq_on = algo2::solve(&p);
        prop_assert!(aa_obs::record_enabled(), "collector raced off mid-test");
        for (&threads, par_off) in THREAD_COUNTS.iter().zip(&pars) {
            let par_on = rayon::with_threads(threads, || algo2::solve_par(&p));
            prop_assert_eq!(par_off, &par_on, "solve_par diverged at {} threads", threads);
        }
        let mut warm_on = WarmState::new();
        let inc_on = algo2::solve_incremental(&p, &mut warm_on);
        let inc_on_again = algo2::solve_incremental(&p, &mut warm_on);
        collector.set_enabled(false);

        prop_assert_eq!(&seq, &seq_on, "algo2::solve diverged under recording");
        prop_assert_eq!(&inc, &inc_on, "cold incremental solve diverged under recording");
        prop_assert_eq!(&inc_again, &inc_on_again, "warm incremental solve diverged");
        // The headline number is bit-identical, not merely close.
        prop_assert_eq!(
            seq.total_utility(&p).to_bits(),
            seq_on.total_utility(&p).to_bits()
        );
    }
}
