//! Property-based verification of the churn-repair guarantees.
//!
//! For a random small problem driven through a random event sequence:
//!
//! * every repaired assignment validates against the post-event problem;
//! * per-server load never exceeds the live capacity;
//! * [`churn::repair_after`] never does worse than the naive
//!   lightest-server evacuation baseline;
//! * the degraded-mode optimizers ([`online::reallocate_in_place`],
//!   [`online::improve_with_migrations`]) never decrease utility when a
//!   thread's curve collapses to a degenerate (all-zero or capped-at-0)
//!   one.

use std::sync::Arc;

use aa_core::churn::{self, ClusterEvent, MigrationBudget};
use aa_core::solver::{Algo2, Solver};
use aa_core::{online, Problem};
use aa_utility::{CappedLinear, DynUtility, LogUtility, Power};
use proptest::prelude::*;

/// Strategy: a random concave utility of a random family.
fn any_utility(cap: f64) -> impl Strategy<Value = DynUtility> {
    prop_oneof![
        (0.1..10.0f64, 0.2..1.0f64)
            .prop_map(move |(s, b)| Arc::new(Power::new(s, b, cap)) as DynUtility),
        (0.1..10.0f64, 0.1..4.0f64)
            .prop_map(move |(s, r)| Arc::new(LogUtility::new(s, r, cap)) as DynUtility),
        (0.1..10.0f64, 0.05..1.0f64)
            .prop_map(move |(s, k)| Arc::new(CappedLinear::new(s, k * cap, cap)) as DynUtility),
    ]
}

/// Strategy: a small random AA problem.
fn small_problem() -> impl Strategy<Value = Problem> {
    (2usize..5, 2usize..8, 1.0..20.0f64).prop_flat_map(|(m, n, cap)| {
        prop::collection::vec(any_utility(cap), n)
            .prop_map(move |threads| Problem::new(m, cap, threads).unwrap())
    })
}

/// Abstract event tokens, materialized against the *evolving* problem so
/// indices are always in range regardless of what earlier events did.
#[derive(Debug, Clone)]
enum Token {
    Down(usize),
    Up,
    Flap(f64),
    Arrive(f64, f64),
    Depart(usize),
}

fn any_token() -> impl Strategy<Value = Token> {
    prop_oneof![
        (0usize..64).prop_map(Token::Down),
        Just(Token::Up),
        (0.3..2.0f64).prop_map(Token::Flap),
        (0.1..8.0f64, 0.2..1.0f64).prop_map(|(s, b)| Token::Arrive(s, b)),
        (0usize..64).prop_map(Token::Depart),
    ]
}

/// Turn a token into a valid event for the current problem. A crash of
/// the last server becomes a recovery; a departure of the last thread
/// becomes an arrival — so every script step is applicable.
fn materialize(problem: &Problem, token: &Token) -> ClusterEvent {
    let m = problem.servers();
    let n = problem.len();
    match token {
        Token::Down(s) if m > 1 => ClusterEvent::ServerDown { server: s % m },
        Token::Down(_) | Token::Up => ClusterEvent::ServerUp,
        Token::Flap(f) => ClusterEvent::CapacityChanged { capacity: problem.capacity() * f },
        Token::Arrive(s, b) => ClusterEvent::ThreadArrived {
            utility: Arc::new(Power::new(*s, *b, problem.capacity())),
        },
        Token::Depart(t) if n > 1 => ClusterEvent::ThreadDeparted { thread: t % n },
        Token::Depart(_) => ClusterEvent::ThreadArrived {
            utility: Arc::new(Power::new(1.0, 0.5, problem.capacity())),
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Driving a plan through any random fault script keeps every
    /// intermediate assignment feasible and never loses to the naive
    /// evacuation baseline.
    #[test]
    fn random_fault_scripts_repair_feasibly_and_beat_naive(
        p in small_problem(),
        tokens in prop::collection::vec(any_token(), 1..10),
        budget in 0usize..4,
    ) {
        let mut problem = p;
        let mut plan = Algo2.solve(&problem);
        for token in &tokens {
            let event = materialize(&problem, token);
            let repair =
                churn::repair_after(&problem, &plan, &event, MigrationBudget::new(budget))
                    .expect("materialized events are always applicable");

            // Feasible against the post-event problem.
            repair.assignment.validate(&repair.problem).unwrap();

            // Per-server load within the live capacity.
            let cap = repair.problem.capacity();
            for (j, load) in repair.assignment.server_loads(&repair.problem)
                .into_iter()
                .enumerate()
            {
                prop_assert!(
                    load <= cap + 1e-6 * cap.max(1.0),
                    "server {j} overloaded: {load} > {cap} after {event:?}"
                );
            }

            // Monotone versus the naive baseline.
            let tol = 1e-9 * repair.report.naive_utility.abs().max(1.0);
            prop_assert!(
                repair.report.utility >= repair.report.naive_utility - tol,
                "repair {} lost to naive {} after {event:?}",
                repair.report.utility,
                repair.report.naive_utility
            );

            // The reported utility is the returned assignment's utility.
            let actual = repair.assignment.total_utility(&repair.problem);
            prop_assert!((actual - repair.report.utility).abs() <= 1e-9 * actual.abs().max(1.0));

            problem = repair.problem;
            plan = repair.assignment;
        }
    }

    /// When one thread's curve collapses to a degenerate one (identically
    /// zero, or capped at 0 resource), the in-place re-split and the
    /// budgeted migration pass still never decrease utility relative to
    /// keeping the stale allocation.
    #[test]
    fn degenerate_curve_never_decreases_utility(
        p in small_problem(),
        victim_seed in 0usize..64,
        zero_kind in 0usize..2,
        budget in 0usize..4,
    ) {
        let plan = Algo2.solve(&p);
        let victim = victim_seed % p.len();
        let cap = p.capacity();
        let degenerate: DynUtility = if zero_kind == 0 {
            // Identically zero everywhere.
            Arc::new(CappedLinear::new(0.0, 0.0, cap))
        } else {
            // Positive slope but capped at 0 resource: still worth 0.
            Arc::new(CappedLinear::new(1.0, 0.0, 0.0))
        };
        let mut threads = p.threads().to_vec();
        threads[victim] = degenerate;
        let drifted = Problem::new(p.servers(), cap, threads).unwrap();

        let stale = plan.total_utility(&drifted);
        let tol = 1e-9 * stale.abs().max(1.0);

        let in_place = online::reallocate_in_place(&drifted, &plan);
        in_place.validate(&drifted).unwrap();
        let u_in_place = in_place.total_utility(&drifted);
        prop_assert!(
            u_in_place >= stale - tol,
            "in-place re-split lost utility: {u_in_place} < {stale}"
        );

        let migrated = online::improve_with_migrations(&drifted, &plan, budget);
        migrated.validate(&drifted).unwrap();
        let u_migrated = migrated.total_utility(&drifted);
        prop_assert!(
            u_migrated >= u_in_place - tol,
            "migration pass lost utility: {u_migrated} < {u_in_place}"
        );
    }
}
