//! Property-based verification of the fleet front-end's exactly-once
//! contract under seeded kill schedules.
//!
//! The real front-end wires [`PendingMap`] + [`FleetRouter`] +
//! [`ParkedQueues`] into an event loop over worker processes. This test
//! drives the *same composition* through a deterministic in-memory model
//! of that loop — admissions, worker answers, kills (with replay), and
//! revives in a random order — and asserts the invariants the serving
//! tier advertises:
//!
//! * every admitted request is answered exactly once, no matter how many
//!   times its worker dies mid-flight (no loss, no double-answer);
//! * per-stream answer order is preserved across replay and handoff
//!   parking (the subsequence of worker answers per stream is strictly
//!   increasing in seq);
//! * a request whose retry budget is exhausted is answered (internally),
//!   not leaked;
//! * once every worker is back up and drained, every stream routes to
//!   its ring owner again — the ring rebalances back after recovery;
//! * a late completion for an already-answered seq is counted as a
//!   duplicate and answers nothing.

use std::collections::{HashMap, VecDeque};

use aa_core::fleet::{ParkedQueues, PendingMap, RouteDecision};
use aa_core::FleetRouter;
use proptest::prelude::*;

const MAX_RETRIES: u32 = 3;

/// What happened to a seq, for the final accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Answer {
    /// A worker solved it.
    Worker,
    /// The front-end answered it (`internal`): retries exhausted or no
    /// worker up at dispatch time.
    Internal,
}

/// Deterministic model of the fleet front-end event loop.
struct Model {
    router: FleetRouter,
    pending: PendingMap<()>,
    /// FIFO of seqs dispatched to each worker (its in-flight window).
    queues: Vec<VecDeque<u64>>,
    parked: ParkedQueues<u64>,
    /// `seq -> answer`, appended exactly when a response is written.
    answered: HashMap<u64, Answer>,
    /// Worker-answer order per stream, for the ordering invariant.
    stream_answers: HashMap<u64, Vec<u64>>,
    next_seq: u64,
}

impl Model {
    fn new(workers: usize) -> Self {
        let mut router = FleetRouter::new(workers);
        for w in 0..workers {
            router.worker_up(w);
        }
        Model {
            router,
            pending: PendingMap::new(),
            queues: vec![VecDeque::new(); workers],
            parked: ParkedQueues::new(),
            answered: HashMap::new(),
            stream_answers: HashMap::new(),
            next_seq: 0,
        }
    }

    fn answer(&mut self, seq: u64, how: Answer) {
        let prev = self.answered.insert(seq, how);
        assert!(prev.is_none(), "seq {seq} answered twice ({prev:?} then {how:?})");
    }

    /// Dispatch a pending seq: route it, or park it, or answer internal.
    fn dispatch(&mut self, seq: u64) {
        let entry = self.pending.get(seq).expect("dispatching a seq not pending");
        match entry.stream {
            Some(stream) => match self.router.route(stream) {
                RouteDecision::To(w) => {
                    self.pending.assign(seq, w);
                    self.queues[w].push_back(seq);
                }
                RouteDecision::Park => self.parked.park(stream, seq),
                RouteDecision::NoWorkers => {
                    self.pending.complete(seq).expect("pending seq vanished");
                    self.answer(seq, Answer::Internal);
                }
            },
            None => {
                let queues = &self.queues;
                match self.router.route_cold(|w| queues[w].len()) {
                    Some(w) => {
                        self.pending.assign(seq, w);
                        self.queues[w].push_back(seq);
                    }
                    None => {
                        self.pending.complete(seq).expect("pending seq vanished");
                        self.answer(seq, Answer::Internal);
                    }
                }
            }
        }
    }

    fn admit(&mut self, stream: Option<u64>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pending.insert(seq, stream, ()).expect("fresh seq already pending");
        self.dispatch(seq);
    }

    /// A worker answers the oldest request in its window.
    fn worker_answer(&mut self, w: usize) {
        let Some(seq) = self.queues[w].pop_front() else { return };
        let entry = self.pending.complete(seq).expect("worker answered a non-pending seq");
        self.answer(seq, Answer::Worker);
        if let Some(stream) = entry.stream {
            self.stream_answers.entry(stream).or_default().push(seq);
            for released in self.router.complete(stream, w) {
                for parked_seq in self.parked.release(released) {
                    self.dispatch(parked_seq);
                }
            }
        }
    }

    /// A worker dies: clear its claims, replay its window onto the
    /// survivors (exhausted retries answer internal), and re-dispatch
    /// any streams released from parking.
    fn kill(&mut self, w: usize) {
        if !self.router.is_up(w) {
            return;
        }
        let released = self.router.worker_down(w);
        self.queues[w].clear();
        for entry in self.pending.take_assigned(w) {
            let seq = entry.seq;
            let exhausted = entry.attempts > MAX_RETRIES;
            self.pending.reinsert(entry).expect("replayed seq already pending");
            if exhausted {
                self.pending.complete(seq).expect("pending seq vanished");
                self.answer(seq, Answer::Internal);
                continue;
            }
            self.dispatch(seq);
        }
        for stream in released {
            for parked_seq in self.parked.release(stream) {
                self.dispatch(parked_seq);
            }
        }
    }

    fn revive(&mut self, w: usize) {
        if !self.router.is_up(w) {
            self.router.worker_up(w);
        }
    }

    /// Everything a live worker holds, for progress accounting.
    fn queued(&self) -> usize {
        self.queues.iter().map(|q| q.len()).sum()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The tentpole invariant: random interleavings of admissions,
    /// answers, kills and revives never lose or double-answer a request,
    /// preserve per-stream order, and rebalance the ring back.
    #[test]
    fn exactly_once_under_seeded_kill_schedules(
        workers in 2usize..5,
        script in prop::collection::vec((0u64..6, 0u64..16), 1..120),
    ) {
        let mut m = Model::new(workers);
        for &(op, arg) in &script {
            match op {
                0 | 1 => m.admit(Some(arg % 8)),
                2 => m.admit(None),
                3 => m.worker_answer((arg as usize) % workers),
                4 => m.kill((arg as usize) % workers),
                _ => m.revive((arg as usize) % workers),
            }
        }
        // Recovery: bring every worker back and drain to quiescence.
        for w in 0..workers {
            m.revive(w);
        }
        let mut guard = 4 * m.next_seq as usize + 64;
        while !m.pending.is_empty() {
            prop_assert!(guard > 0, "drain loop made no progress");
            guard -= 1;
            let Some(w) = (0..workers).find(|&w| !m.queues[w].is_empty()) else {
                panic!(
                    "pending {} requests but no worker holds anything (parked {})",
                    m.pending.len(),
                    m.parked.len()
                );
            };
            m.worker_answer(w);
        }

        // No loss, no double-answer: every admitted seq answered once.
        prop_assert_eq!(m.queued(), 0);
        prop_assert!(m.parked.is_empty(), "parked requests leaked");
        prop_assert_eq!(m.answered.len() as u64, m.next_seq);
        prop_assert_eq!(m.pending.answered(), m.next_seq);
        prop_assert_eq!(m.pending.duplicates(), 0);

        // Per-stream worker answers arrive in admission order even
        // across replay and handoff parking.
        for (stream, seqs) in &m.stream_answers {
            for pair in seqs.windows(2) {
                prop_assert!(
                    pair[0] < pair[1],
                    "stream {} answered out of order: {:?}",
                    stream,
                    seqs
                );
            }
        }

        // Ring rebalanced back: with everyone up and drained, each
        // stream routes to its geometric owner again.
        for stream in 0..8u64 {
            let owner = m.router.owner(stream).unwrap();
            prop_assert_eq!(m.router.route(stream), RouteDecision::To(owner));
            m.router.complete(stream, owner);
        }

        // A straggler completion for an answered seq is a counted
        // duplicate, never a second answer.
        if m.next_seq > 0 {
            prop_assert!(m.pending.complete(0).is_none());
            prop_assert_eq!(m.pending.duplicates(), 1);
        }
    }

    /// Killing the same worker repeatedly exhausts the retry budget of
    /// its sticky stream instead of looping forever, and the answers
    /// still come exactly once.
    #[test]
    fn retry_budget_bounds_replay(kills in 1u64..12, stream in 0u64..64) {
        let workers = 2;
        let mut m = Model::new(workers);
        for _ in 0..6 {
            m.admit(Some(stream));
        }
        for k in 0..kills {
            // Kill whichever worker currently holds the stream's window.
            if let Some(w) = (0..workers).find(|&w| !m.queues[w].is_empty()) {
                m.kill(w);
                m.revive(w);
            }
            // Let one answer through occasionally so both branches of
            // the replay path (progress and pure churn) are exercised.
            if k % 3 == 2 {
                if let Some(w) = (0..workers).find(|&w| !m.queues[w].is_empty()) {
                    m.worker_answer(w);
                }
            }
        }
        let mut guard = 256;
        while !m.pending.is_empty() && guard > 0 {
            guard -= 1;
            if let Some(w) = (0..workers).find(|&w| !m.queues[w].is_empty()) {
                m.worker_answer(w);
            } else {
                break;
            }
        }
        prop_assert!(m.pending.is_empty());
        prop_assert_eq!(m.answered.len(), 6);
        prop_assert_eq!(m.pending.duplicates(), 0);
    }
}
