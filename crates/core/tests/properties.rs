//! Property-based verification of the paper's theorems on random
//! instances.
//!
//! For every randomly generated small AA instance:
//!
//! * Theorem V.16 / VI.1 — Algorithms 1 and 2 achieve at least
//!   `α = 2(√2 − 1)` times the *exact* optimum (checked against the
//!   brute-force solver, a strictly stronger statement than vs the bound);
//! * Lemma V.2 — the super-optimal utility dominates the exact optimum;
//! * Lemma V.3 — the super-optimal allocation uses the full pooled budget;
//! * Lemma V.5 — at most one unfull thread lands on any server;
//! * feasibility — every solver's output validates.

use std::sync::Arc;

use aa_core::solver::{Algo1, Algo2, Rr, Ru, Solver, Ur, Uu};
use aa_core::{algo1, algo2, exact, superopt, Problem, ALPHA};
use aa_utility::{CappedLinear, DynUtility, LogUtility, Power};
use proptest::prelude::*;

/// Strategy: a random concave utility of a random family.
fn any_utility(cap: f64) -> impl Strategy<Value = DynUtility> {
    prop_oneof![
        (0.1..10.0f64, 0.2..1.0f64)
            .prop_map(move |(s, b)| Arc::new(Power::new(s, b, cap)) as DynUtility),
        (0.1..10.0f64, 0.1..4.0f64)
            .prop_map(move |(s, r)| Arc::new(LogUtility::new(s, r, cap)) as DynUtility),
        (0.1..10.0f64, 0.05..1.0f64)
            .prop_map(move |(s, k)| Arc::new(CappedLinear::new(s, k * cap, cap)) as DynUtility),
    ]
}

/// Strategy: a small random AA problem (exactly solvable).
fn small_problem() -> impl Strategy<Value = Problem> {
    (2usize..4, 1usize..7, 1.0..20.0f64).prop_flat_map(|(m, n, cap)| {
        prop::collection::vec(any_utility(cap), n)
            .prop_map(move |threads| Problem::new(m, cap, threads).unwrap())
    })
}

/// Strategy: a medium random problem (too big for exact, fine for bounds).
fn medium_problem() -> impl Strategy<Value = Problem> {
    (2usize..9, 8usize..40, 1.0..100.0f64).prop_flat_map(|(m, n, cap)| {
        prop::collection::vec(any_utility(cap), n)
            .prop_map(move |threads| Problem::new(m, cap, threads).unwrap())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn algorithms_meet_alpha_against_exact_optimum(p in small_problem()) {
        let opt = exact::optimal_utility(&p);
        for (name, a) in [("algo1", algo1::solve(&p)), ("algo2", algo2::solve(&p))] {
            a.validate(&p).unwrap();
            let u = a.total_utility(&p);
            prop_assert!(
                u >= ALPHA * opt - 1e-6 * opt.max(1.0),
                "{name}: {u} < α·OPT = {}", ALPHA * opt
            );
            prop_assert!(
                u <= opt + 1e-6 * opt.max(1.0),
                "{name} beat the exact optimum: {u} > {opt}"
            );
        }
    }

    #[test]
    fn superopt_dominates_exact_optimum(p in small_problem()) {
        let opt = exact::optimal_utility(&p);
        let bound = superopt::super_optimal(&p).utility;
        prop_assert!(bound >= opt - 1e-6 * opt.max(1.0), "F̂ = {bound} < OPT = {opt}");
    }

    #[test]
    fn superopt_exhausts_pooled_budget(p in medium_problem()) {
        // Lemma V.3 (generalized for per-thread caps): the allocation
        // totals min(mC, Σ min(cap_i, C)).
        let so = superopt::super_optimal(&p);
        let pooled = p.servers() as f64 * p.capacity();
        let cap_sum: f64 = (0..p.len()).map(|i| p.effective_cap(i)).sum();
        let expect = pooled.min(cap_sum);
        let got: f64 = so.amounts.iter().sum();
        prop_assert!(
            (got - expect).abs() <= 1e-6 * expect.max(1.0),
            "Σĉ = {got}, expected {expect}"
        );
        // And every ĉ_i respects the per-thread cap.
        for (i, &c) in so.amounts.iter().enumerate() {
            prop_assert!(c <= p.effective_cap(i) + 1e-9);
        }
    }

    #[test]
    fn algorithms_meet_alpha_against_bound_on_medium(p in medium_problem()) {
        let bound = superopt::super_optimal(&p).utility;
        for a in [algo1::solve(&p), algo2::solve(&p)] {
            a.validate(&p).unwrap();
            let u = a.total_utility(&p);
            prop_assert!(u >= ALPHA * bound - 1e-6 * bound.max(1.0));
            prop_assert!(u <= bound + 1e-6 * bound.max(1.0));
        }
    }

    #[test]
    fn at_most_one_unfull_thread_per_server(p in medium_problem()) {
        // Lemma V.5 for both algorithms.
        let so = superopt::super_optimal(&p);
        for a in [algo1::solve(&p), algo2::solve(&p)] {
            let mut unfull = vec![0usize; p.servers()];
            for i in 0..p.len() {
                if a.amount[i] < so.amounts[i] - 1e-6 * so.amounts[i].max(1e-9) {
                    unfull[a.server[i]] += 1;
                }
            }
            prop_assert!(unfull.iter().all(|&k| k <= 1), "unfull per server: {unfull:?}");
        }
    }

    #[test]
    fn every_solver_feasible_and_below_bound(p in medium_problem(), seed in 0u64..1000) {
        use rand::SeedableRng;
        let bound = superopt::super_optimal(&p).utility;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let solvers: Vec<Box<dyn Solver>> = vec![
            Box::new(Algo1), Box::new(Algo2), Box::new(Uu),
            Box::new(Ur), Box::new(Ru), Box::new(Rr),
        ];
        for s in &solvers {
            let a = s.solve_with(&p, &mut rng);
            prop_assert!(a.validate(&p).is_ok(), "{} infeasible", s.name());
            prop_assert!(
                a.total_utility(&p) <= bound + 1e-6 * bound.max(1.0),
                "{} above the super-optimal bound", s.name()
            );
        }
    }

    #[test]
    fn algo2_never_below_uu(p in medium_problem()) {
        // Not a theorem in general, but on every generated instance the
        // approximation algorithm should not lose to blind round-robin by
        // more than the α slack — check the weaker, always-true form:
        // algo2 ≥ α · (best heuristic), since each heuristic ≤ OPT ≤ F̂.
        let u2 = algo2::solve(&p).total_utility(&p);
        let uu = aa_core::heuristics::uu(&p).total_utility(&p);
        prop_assert!(u2 >= ALPHA * uu - 1e-6 * uu.max(1.0), "algo2 {u2} vs uu {uu}");
    }
}
