//! Differential property tests for the incremental solve engine.
//!
//! The contract under test (see `aa_core::incremental`): for *any*
//! edit script — adding, removing, and mutating threads, resizing the
//! cluster, rescaling capacity — `solve_incremental` driven through one
//! persistent [`WarmState`] returns an assignment **bit-identical** to
//! a cold `algo2::solve` of the same instance, at every step, at every
//! rayon pool size. And an expired [`Budget`] mid-script is
//! cancellation-safe: the typed error invalidates the warm state, and
//! the next solve recovers to the exact cold answer.

use std::sync::Arc;

use aa_core::incremental::{solve_incremental_budgeted, WarmState};
use aa_core::{algo2, Budget, Problem, SolveError};
use aa_utility::{CappedLinear, DynUtility, LogUtility, Power};
use proptest::prelude::*;

/// Strategy: a random concave utility of a random family.
fn any_utility(cap: f64) -> impl Strategy<Value = DynUtility> {
    prop_oneof![
        (0.1..10.0f64, 0.2..1.0f64)
            .prop_map(move |(s, b)| Arc::new(Power::new(s, b, cap)) as DynUtility),
        (0.1..10.0f64, 0.1..4.0f64)
            .prop_map(move |(s, r)| Arc::new(LogUtility::new(s, r, cap)) as DynUtility),
        (0.1..10.0f64, 0.05..1.0f64)
            .prop_map(move |(s, k)| Arc::new(CappedLinear::new(s, k * cap, cap)) as DynUtility),
    ]
}

/// One step of a random edit script. Indices are taken modulo the live
/// thread count when applied, so every step is always applicable.
#[derive(Debug, Clone)]
enum Edit {
    /// Append a fresh thread.
    Add(f64, f64),
    /// Remove thread `i % n` (skipped when only one thread remains).
    Remove(usize),
    /// Replace thread `i % n`'s utility with a fresh curve.
    Mutate(usize, f64, f64),
    /// Resize the cluster to this many servers.
    Servers(usize),
    /// Rescale the per-server capacity (forces a structural rebuild).
    Capacity(f64),
}

fn any_edit() -> impl Strategy<Value = Edit> {
    let mutate = (0usize..64, 0.1..8.0f64, 0.2..1.0f64)
        .prop_map(|(i, s, b)| Edit::Mutate(i, s, b))
        .boxed();
    // The stub's `prop_oneof!` draws uniformly; listing the mutate
    // strategy three times biases scripts toward the warm path's
    // bread-and-butter case without needing weights.
    prop_oneof![
        (0.1..8.0f64, 0.2..1.0f64).prop_map(|(s, b)| Edit::Add(s, b)),
        (0usize..64).prop_map(Edit::Remove),
        mutate.clone(),
        mutate.clone(),
        mutate,
        (1usize..7).prop_map(Edit::Servers),
        (0.5..2.0f64).prop_map(Edit::Capacity),
    ]
}

/// Mutable script state: the pieces a [`Problem`] is built from.
struct Instance {
    servers: usize,
    capacity: f64,
    threads: Vec<DynUtility>,
}

impl Instance {
    fn apply(&mut self, edit: &Edit) {
        let n = self.threads.len();
        match edit {
            Edit::Add(s, b) => {
                self.threads.push(Arc::new(Power::new(*s, *b, self.capacity)));
            }
            Edit::Remove(i) if n > 1 => {
                self.threads.remove(i % n);
            }
            Edit::Remove(_) => {}
            Edit::Mutate(i, s, b) => {
                self.threads[i % n] = Arc::new(Power::new(*s, *b, self.capacity));
            }
            Edit::Servers(m) => self.servers = *m,
            Edit::Capacity(f) => self.capacity *= f,
        }
    }

    fn problem(&self) -> Problem {
        // Unchanged entries keep their `Arc` identity across steps —
        // exactly what the engine's delta detection keys on.
        Problem::new(self.servers, self.capacity, self.threads.clone()).unwrap()
    }
}

/// Drive one edit script, checking warm-vs-cold bitwise equality at
/// every step. Factored out so the same script runs under several
/// rayon pool sizes.
fn check_script(
    servers: usize,
    capacity: f64,
    threads: &[DynUtility],
    script: &[Edit],
) -> Result<(), String> {
    let mut inst = Instance { servers, capacity, threads: threads.to_vec() };
    let mut state = WarmState::new();
    for (step, edit) in std::iter::once(None)
        .chain(script.iter().map(Some))
        .enumerate()
    {
        if let Some(edit) = edit {
            inst.apply(edit);
        }
        let problem = inst.problem();
        let cold = algo2::solve(&problem);
        let warm = algo2::solve_incremental(&problem, &mut state);
        prop_assert_eq!(&cold.server, &warm.server, "step {}: placement diverged", step);
        for (i, (c, w)) in cold.amount.iter().zip(&warm.amount).enumerate() {
            prop_assert_eq!(
                c.to_bits(),
                w.to_bits(),
                "step {}: thread {} allocation diverged ({} vs {})",
                step,
                i,
                c,
                w
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random edit scripts: warm output is bit-identical to a cold
    /// solve at every step, under 1-, 2-, and 8-thread rayon pools.
    #[test]
    fn random_edit_scripts_are_bit_identical_to_cold(
        shape in (2usize..5, 4.0..40.0f64),
        threads in prop::collection::vec(any_utility(20.0), 2..12),
        script in prop::collection::vec(any_edit(), 1..12),
    ) {
        let (m, cap) = shape;
        for pool in [1usize, 2, 8] {
            rayon::with_threads(pool, || check_script(m, cap, &threads, &script))?;
        }
    }

    /// Cancellation safety: an expired budget mid-script surfaces as a
    /// typed error, poisons nothing, and the very next solve recovers
    /// to the exact cold answer.
    #[test]
    fn expired_budget_recovers_to_the_exact_cold_answer(
        shape in (2usize..5, 4.0..40.0f64),
        threads in prop::collection::vec(any_utility(20.0), 2..10),
        warmups in 0usize..3,
    ) {
        let (m, cap) = shape;
        let inst = Instance { servers: m, capacity: cap, threads };
        let problem = inst.problem();
        let mut state = WarmState::new();
        for _ in 0..warmups {
            algo2::solve_incremental(&problem, &mut state);
        }
        let err = solve_incremental_budgeted(&problem, &mut state, &Budget::with_fuel(0))
            .unwrap_err();
        prop_assert_eq!(err, SolveError::DeadlineExceeded);
        // Recovery: the expired solve invalidated the warm state, so
        // the next call is a cold build — and must equal algo2 exactly.
        let recovered = algo2::solve_incremental(&problem, &mut state);
        let cold = algo2::solve(&problem);
        prop_assert_eq!(&recovered.server, &cold.server);
        for (r, c) in recovered.amount.iter().zip(&cold.amount) {
            prop_assert_eq!(r.to_bits(), c.to_bits());
        }
    }
}
