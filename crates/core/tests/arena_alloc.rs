//! Zero-allocation verification for the steady-state incremental path.
//!
//! Installs a counting `#[global_allocator]` and asserts that once the
//! [`aa_core::WarmState`] arena has been sized by a few warmup solves,
//! a steady-state `solve_incremental_into` call performs **zero** heap
//! allocations. This is the test hook promised by the arena's design:
//! every buffer the hot path touches is preallocated and reused.
//!
//! This file deliberately contains a single test: the counter is
//! process-global, so a concurrently running sibling test would
//! contaminate the measurement.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use aa_core::incremental::{solve_incremental_into, WarmState};
use aa_core::{Assignment, Problem};
use aa_utility::{DynUtility, Power};

/// Counts allocation events while `ARMED` is set; otherwise a
/// pass-through to the system allocator.
struct CountingAlloc;

static ARMED: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Run `f` with the counter armed and return how many allocation
/// events it performed.
fn count_allocs<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = ALLOCS.load(Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    let out = f();
    ARMED.store(false, Ordering::SeqCst);
    (ALLOCS.load(Ordering::SeqCst) - before, out)
}

#[test]
fn steady_state_incremental_solve_does_not_allocate() {
    let servers = 8;
    let capacity = 100.0;
    let n = 64;

    // Observability must not erode the zero-allocation contract: run
    // the whole measurement with a live, enabled span collector. The
    // span buffer is preallocated at install time and every metric
    // handle is created during warmup, so the steady-state record path
    // (span push + counter inc + histogram observe) stays free.
    aa_obs::Collector::install().set_enabled(true);

    // Build the base instance and a drift sequence of problems UP
    // FRONT: `Problem::new` clones the thread vec and the mutated
    // epochs allocate fresh `Arc`s — all setup cost, none of it on the
    // measured path. Unchanged entries keep their `Arc` identity so
    // the engine's delta detection stays on the warm path.
    let mut threads: Vec<DynUtility> = (0..n)
        .map(|i| {
            let s = 1.0 + (i % 7) as f64;
            let b = 0.3 + 0.05 * (i % 9) as f64;
            Arc::new(Power::new(s, b, capacity)) as DynUtility
        })
        .collect();

    let mut epochs = Vec::new();
    epochs.push(Problem::new(servers, capacity, threads.clone()).unwrap());
    for e in 0..6 {
        let i = (e * 11) % n;
        threads[i] = Arc::new(Power::new(2.0 + e as f64, 0.4, capacity)) as DynUtility;
        epochs.push(Problem::new(servers, capacity, threads.clone()).unwrap());
    }
    let steady = epochs.pop().unwrap();

    // Warm up: size the arena, the warm caches, and the output buffers.
    let mut state = WarmState::new();
    let mut out = Assignment::trivial(n);
    for problem in &epochs {
        solve_incremental_into(problem, &mut state, &mut out);
    }

    // Measure exactly one steady-state warm solve (one mutated thread,
    // same n, same m, same capacity — the serve-loop hot path).
    let (allocs, ()) = count_allocs(|| {
        solve_incremental_into(&steady, &mut state, &mut out);
    });
    assert_eq!(
        allocs, 0,
        "steady-state incremental solve performed {allocs} heap allocations; \
         the arena hot path must be allocation-free"
    );

    // Sanity: the measured solve produced a real answer, and the
    // collector really was recording it (not silently disabled).
    assert_eq!(out.server.len(), n);
    assert_eq!(out.amount.len(), n);
    assert!(out.amount.iter().all(|a| a.is_finite()));
    let collector = aa_obs::Collector::get().expect("installed above");
    assert!(
        collector.events().iter().any(|e| e.name == "incremental"),
        "no incremental spans recorded — the zero-alloc run was not observed"
    );
}
