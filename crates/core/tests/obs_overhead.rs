//! Overhead gate for the observability layer (DESIGN.md §9 budget).
//!
//! The acceptance workload is the 64-server × 512-thread drift bench:
//! ~1% of threads mutate per epoch and the incremental engine solves
//! each epoch on the warm path. This test times that workload with the
//! span collector disabled and enabled and asserts the enabled median
//! stays within **3%** of the disabled one.
//!
//! Marked `#[ignore]`: it is a timing assertion, meaningless under the
//! load of a full parallel test run. CI's obs-smoke job runs it alone
//! (`cargo test --release -p aa-core --test obs_overhead -- --ignored`)
//! on a quiet runner.

use std::sync::Arc;
use std::time::Instant;

use aa_core::incremental::{solve_incremental_into, WarmState};
use aa_core::{Assignment, Problem};
use aa_utility::{DynUtility, LogUtility, Power};

const SERVERS: usize = 64;
const THREADS: usize = 512;
const CAPACITY: f64 = 1000.0;
const EPOCHS: usize = 60;
/// Alternating measurement rounds per configuration; the best median
/// of each side is compared, which cancels machine-wide drift
/// (thermal, background load) that a single A-then-B run would absorb
/// into the comparison.
const ROUNDS: usize = 3;

fn utility(i: usize) -> DynUtility {
    let s = 0.5 + (i % 13) as f64 * 0.31;
    if i % 3 == 0 {
        Arc::new(LogUtility::new(s, 0.4, CAPACITY)) as DynUtility
    } else {
        let b = 0.25 + 0.05 * (i % 11) as f64;
        Arc::new(Power::new(s, b, CAPACITY)) as DynUtility
    }
}

/// The drift sequence, built once: both configurations solve the exact
/// same problems, and unchanged threads keep their `Arc` identity so
/// the engine stays on the warm path.
fn drift_problems() -> Vec<Problem> {
    let mut threads: Vec<DynUtility> = (0..THREADS).map(utility).collect();
    let churn = THREADS / 100; // ~1% per epoch
    let mut problems = Vec::with_capacity(EPOCHS);
    problems.push(Problem::new(SERVERS, CAPACITY, threads.clone()).unwrap());
    for epoch in 1..EPOCHS {
        for k in 0..churn {
            let at = (epoch * 97 + k * 31) % THREADS;
            threads[at] = utility(at + epoch * 7 + 1);
        }
        problems.push(Problem::new(SERVERS, CAPACITY, threads.clone()).unwrap());
    }
    problems
}

/// Median per-epoch warm-solve time in milliseconds (the first, cold
/// epoch is excluded — the budget governs the steady state).
fn median_warm_ms(problems: &[Problem]) -> f64 {
    let mut state = WarmState::new();
    let mut out = Assignment::trivial(THREADS);
    let mut samples = Vec::with_capacity(problems.len() - 1);
    for (epoch, problem) in problems.iter().enumerate() {
        let t0 = Instant::now();
        solve_incremental_into(problem, &mut state, &mut out);
        if epoch > 0 {
            samples.push(t0.elapsed().as_secs_f64() * 1e3);
        }
    }
    samples.sort_unstable_by(f64::total_cmp);
    samples[(samples.len() - 1) / 2]
}

#[test]
#[ignore = "timing gate; run alone on a quiet machine (CI obs-smoke)"]
fn live_collector_costs_under_three_percent_on_the_drift_workload() {
    let problems = drift_problems();
    let collector = aa_obs::Collector::install();

    // Untimed warmup on each side: pages, caches, metric handles.
    collector.set_enabled(false);
    let _ = median_warm_ms(&problems);
    collector.set_enabled(true);
    let _ = median_warm_ms(&problems);

    let mut best_off = f64::INFINITY;
    let mut best_on = f64::INFINITY;
    for _ in 0..ROUNDS {
        collector.set_enabled(false);
        best_off = best_off.min(median_warm_ms(&problems));
        collector.set_enabled(true);
        // Keep the buffer from saturating and degenerating into the
        // (cheaper) drop-new path, which would flatter the measurement.
        collector.clear();
        best_on = best_on.min(median_warm_ms(&problems));
    }
    collector.set_enabled(false);

    let ratio = best_on / best_off;
    assert!(
        ratio <= 1.03,
        "observability overhead {:.2}% exceeds the 3% budget \
         (off {best_off:.4}ms, on {best_on:.4}ms over {} warm epochs)",
        (ratio - 1.0) * 100.0,
        EPOCHS - 1
    );
}
