//! Property-based verification of the federated histogram merge.
//!
//! The fleet front-end re-exports worker histograms by bucket-wise
//! addition ([`aa_obs::Histogram::merge`]), so the `worker="fleet"`
//! aggregate is only trustworthy if merging is a proper monoid over
//! the recorded samples:
//!
//! * **commutative** — merge order across workers must not matter;
//! * **associative** — merging worker-by-worker must equal merging
//!   pre-merged groups;
//! * **lossless** — count, sum, max, and every bucket of the merge
//!   must equal a single histogram that observed all samples directly;
//! * **quantile-exact** — because quantiles are bucket-resolved (and
//!   capped at the exact max), p50/p99 of the merge must be
//!   *identical* to the combined histogram, not merely close.
//!
//! The wire round-trip (`bucket_counts` → `from_parts`, which is what
//! `MetricsSnapshot` does across the worker pipe) must also preserve
//! all of the above.

use aa_obs::metrics::NUM_BOUNDARIES;
use aa_obs::Histogram;
use proptest::prelude::*;

/// Strategy: one worker's worth of latency samples, spanning the
/// bucket ladder from sub-µs to overflow.
fn samples() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(
        prop_oneof![
            0u64..10,             // first buckets, incl. the 0 edge
            10u64..10_000,        // mid ladder
            10_000u64..10_000_000, // upper decades
            Just(u64::MAX),       // overflow bucket
        ],
        0..40,
    )
}

fn hist_of(samples: &[u64]) -> Histogram {
    let h = Histogram::default();
    for &s in samples {
        h.record_micros(s);
    }
    h
}

/// Merge a histogram the way the fleet wire does: snapshot to parts,
/// reconstruct, then bucket-add.
fn merge_via_wire(into: &Histogram, from: &Histogram) {
    let parts = Histogram::from_parts(
        &from.bucket_counts(),
        from.count(),
        from.sum_micros(),
        from.max_micros(),
    )
    .expect("bucket_counts always round-trips");
    into.merge(&parts);
}

fn assert_same(a: &Histogram, b: &Histogram) {
    assert_eq!(a.count(), b.count(), "counts diverge");
    assert_eq!(a.sum_micros(), b.sum_micros(), "sums diverge");
    assert_eq!(a.max_micros(), b.max_micros(), "maxes diverge");
    assert_eq!(a.bucket_counts(), b.bucket_counts(), "buckets diverge");
}

proptest! {
    #[test]
    fn merge_is_lossless_and_commutative(a in samples(), b in samples()) {
        // Combined reference: one histogram that saw every sample.
        let combined: Vec<u64> = a.iter().chain(&b).copied().collect();
        let reference = hist_of(&combined);

        let ab = hist_of(&a);
        ab.merge(&hist_of(&b));
        let ba = hist_of(&b);
        ba.merge(&hist_of(&a));

        assert_same(&ab, &reference);
        assert_same(&ba, &reference);

        // Bucket-resolved quantiles of the merge are *identical* to the
        // combined histogram — not an approximation.
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            prop_assert_eq!(ab.quantile_micros(q), reference.quantile_micros(q));
            prop_assert_eq!(ba.quantile_micros(q), reference.quantile_micros(q));
        }
    }

    #[test]
    fn merge_is_associative(a in samples(), b in samples(), c in samples()) {
        // (a ⊕ b) ⊕ c
        let left = hist_of(&a);
        left.merge(&hist_of(&b));
        left.merge(&hist_of(&c));
        // a ⊕ (b ⊕ c)
        let bc = hist_of(&b);
        bc.merge(&hist_of(&c));
        let right = hist_of(&a);
        right.merge(&bc);

        assert_same(&left, &right);
        for q in [0.5, 0.99] {
            prop_assert_eq!(left.quantile_micros(q), right.quantile_micros(q));
        }
    }

    #[test]
    fn wire_round_trip_preserves_the_merge(workers in prop::collection::vec(samples(), 1..5)) {
        // Direct in-process merge vs. the snapshot → from_parts → merge
        // path every worker histogram takes over the pipe.
        let direct = Histogram::default();
        let federated = Histogram::default();
        let mut all = Vec::new();
        for w in &workers {
            let h = hist_of(w);
            direct.merge(&h);
            merge_via_wire(&federated, &h);
            all.extend_from_slice(w);
        }
        let reference = hist_of(&all);
        assert_same(&federated, &direct);
        assert_same(&federated, &reference);

        let total: u64 = workers.iter().map(|w| w.len() as u64).sum();
        prop_assert_eq!(federated.count(), total, "merge must preserve total count");
    }

    #[test]
    fn from_parts_rejects_malformed_bucket_vectors(len in 0usize..200) {
        // Only exactly NUM_BOUNDARIES+1 buckets round-trip; anything
        // else (a worker speaking a different ladder) is rejected
        // rather than silently misaligned.
        let buckets = vec![0u64; len];
        let ok = Histogram::from_parts(&buckets, 0, 0, 0).is_some();
        prop_assert_eq!(ok, len == NUM_BOUNDARIES + 1);
    }
}
