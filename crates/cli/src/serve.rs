//! `aa-solve serve` — a deadline-aware LDJSON request loop over a
//! supervised pool of crash-isolated worker shards.
//!
//! Requests arrive one JSON object per line on stdin; responses leave
//! one JSON object per line on stdout, in completion order (clients
//! correlate by echoed `id`). The loop is a reader thread, a writer
//! thread, and an [`aa_core::ShardPool`] between them:
//!
//! * the **reader** parses lines (bounded by `--max-line-bytes`; an
//!   oversized line is answered with a `class:"parse"` error instead of
//!   growing the buffer without bound) and admits jobs with a
//!   non-blocking submit. A full queue is answered immediately with
//!   `{"status":"overloaded","retry_after_ms":…}` — load is shed at the
//!   door instead of growing an unbounded backlog that makes every
//!   deadline unmeetable. Requests carrying a `stream` key route to a
//!   fixed shard by consistent hashing, so that stream's incremental
//!   [`WarmState`](aa_core::WarmState) stays hot; key-less requests go
//!   to a shared cold queue any idle shard steals from;
//! * each **shard** solves with its own [`TieredSolver`](aa_core::TieredSolver)
//!   behind a `catch_unwind` boundary: a panicking solve yields
//!   `{"status":"error","class":"solve_panic"}` and the shard keeps
//!   serving. If a shard thread itself dies, the pool's supervisor
//!   answers its in-flight request, drains its queued requests with
//!   `class:"internal"` errors (serving continues from surviving
//!   shards — a shard death never tears down the loop), and restarts
//!   the shard with exponential backoff; a shard that keeps crashing is
//!   retired and its streams reroute;
//! * the **writer** turns pool completions back into response lines and
//!   owns all latency/deadline accounting.
//!
//! All accounting flows through an [`aa_obs::Registry`] (the
//! `aa_serve_*` family, plus the pool's `aa_shard_*` / `aa_supervisor_*`
//! gauges and counters), so a live `--metrics-addr` scrape sees the same
//! numbers the shutdown dump reports. [`ServeCounters`] is a snapshot of
//! that registry taken at EOF.

use std::collections::{BTreeMap, HashMap};
use std::io::{BufRead, Write};
use std::sync::mpsc::{self, Receiver};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use aa_core::fleet::DEFAULT_SLO_P99_MS;
use aa_core::shard::{ChaosHook, ShardCompletion, ShardConfig, ShardError, ShardJob, ShardPool};
use aa_core::tiered::Tier;
use aa_core::{SolveError, SubmitError};
use serde::{Deserialize, Serialize};

use crate::{build_problem, CliError, ProblemFile};

/// One request line: an optional correlation `id` (echoed back
/// verbatim), an optional stream key for warm-state locality, an
/// optional per-request deadline, and the problem.
#[derive(Debug, Clone)]
pub struct ServeRequest {
    /// Client correlation token; any JSON value, echoed in the response.
    pub id: serde_json::Value,
    /// Warm-state routing key: requests sharing a `stream` go to the
    /// same shard and reuse its incremental solver state. Omitted →
    /// cold queue (any shard).
    pub stream: Option<u64>,
    /// Wall-clock deadline for this request, milliseconds from arrival.
    /// Falls back to the loop's `--deadline-ms` default, else unlimited.
    pub deadline_ms: Option<u64>,
    /// The problem to solve.
    pub problem: ProblemFile,
}

// Hand-written so `id`, `stream`, and `deadline_ms` may be omitted
// entirely; the derive treats every field as required.
impl Deserialize for ServeRequest {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let obj = serde::expect_obj(v, "ServeRequest")?;
        let id = v.get("id").cloned().unwrap_or(serde::Value::Null);
        let stream = match v.get("stream") {
            None | Some(serde::Value::Null) => None,
            Some(s) => Some(s.as_u64().ok_or_else(|| {
                format!("ServeRequest.stream: expected unsigned integer, found {s:?}")
            })?),
        };
        let deadline_ms = match v.get("deadline_ms") {
            None | Some(serde::Value::Null) => None,
            Some(d) => Some(d.as_u64().ok_or_else(|| {
                format!("ServeRequest.deadline_ms: expected unsigned integer, found {d:?}")
            })?),
        };
        let problem = serde::de_field(obj, "problem", "ServeRequest")?;
        Ok(ServeRequest { id, stream, deadline_ms, problem })
    }
}

/// One response line.
#[derive(Debug, Clone, Serialize)]
#[serde(tag = "status", rename_all = "snake_case")]
pub enum ServeResponse {
    /// The solve finished (possibly degraded — see `tier`).
    Ok {
        /// Echoed request id.
        id: serde_json::Value,
        /// Name of the ladder tier that answered.
        tier: String,
        /// True when the answer is anything less than the top tier
        /// completing.
        degraded: bool,
        /// Total utility of the assignment.
        utility: f64,
        /// Server index per thread.
        server: Vec<usize>,
        /// Allocation per thread.
        allocation: Vec<f64>,
        /// End-to-end latency (arrival → response), milliseconds.
        latency_ms: f64,
    },
    /// The admission queue was full; nothing was attempted. Retry after
    /// the hinted backoff.
    Overloaded {
        /// Echoed request id.
        id: serde_json::Value,
        /// Suggested client backoff: the queue's current estimated
        /// drain time.
        retry_after_ms: u64,
    },
    /// The request failed. `class` is stable for dispatch; `error` is
    /// human-readable.
    Error {
        /// Echoed request id (`null` for unparseable lines).
        id: serde_json::Value,
        /// Error class: `parse`, `problem`, `deadline`, `solve`,
        /// `solve_panic` (a contained panic or shard crash mid-solve),
        /// or `internal` (the request was queued on a shard that died;
        /// safe to retry).
        class: String,
        /// Human-readable detail.
        error: String,
    },
}

/// Latency accounting for one ladder tier: a snapshot of the
/// `aa_serve_tier_solve_micros{tier=…}` histogram.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct TierCounter {
    /// Requests this tier answered.
    pub answered: u64,
    /// Total solve wall time across those answers, microseconds.
    pub total_micros: u64,
    /// Worst single solve wall time, microseconds.
    pub max_micros: u64,
}

/// Counters accumulated over one serve session, dumped at shutdown: a
/// snapshot of the session's `aa_serve_*` registry entries taken at EOF.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct ServeCounters {
    /// Non-empty request lines read.
    pub received: u64,
    /// Requests answered with `status: ok`.
    pub solved: u64,
    /// Requests shed at admission (queue full).
    pub shed: u64,
    /// Admitted requests whose deadline lapsed before a shard got to
    /// them (answered without a solve).
    pub expired_in_queue: u64,
    /// Lines that were not valid requests (including oversized lines).
    pub parse_errors: u64,
    /// Admitted requests whose solve failed (bad problem, cancellation,
    /// contained panic, shard crash).
    pub solve_errors: u64,
    /// Solves that panicked (contained) or took their shard down
    /// mid-request; a subset of `solve_errors`.
    pub solve_panics: u64,
    /// Admitted requests drained from a dead shard's queue and answered
    /// with `class:"internal"`.
    pub internal_errors: u64,
    /// Solved requests whose end-to-end latency exceeded their deadline
    /// by more than the grace window.
    pub deadline_misses: u64,
    /// Median end-to-end latency over `status: ok` responses,
    /// milliseconds (histogram-derived, capped at the exact observed
    /// maximum; 0 when nothing was solved).
    pub latency_p50_ms: f64,
    /// 99th-percentile end-to-end latency over `status: ok` responses,
    /// milliseconds (histogram-derived, capped at the exact observed
    /// maximum; 0 when nothing was solved).
    pub latency_p99_ms: f64,
    /// Latency accounting per answering tier.
    pub per_tier: BTreeMap<String, TierCounter>,
}

/// Configuration for [`run_serve`].
#[derive(Clone)]
pub struct ServeOpts {
    /// Per-shard admission queue depth; requests beyond it are shed.
    pub queue: usize,
    /// Deadline for requests that don't carry their own, milliseconds.
    pub default_deadline_ms: Option<u64>,
    /// Slack added to a deadline before a completed solve counts as a
    /// miss, milliseconds.
    pub grace_ms: u64,
    /// Circuit breaker: consecutive tier failures before it opens.
    pub breaker_threshold: u32,
    /// Circuit breaker: requests a tripped tier sits out.
    pub breaker_cooldown: u64,
    /// Worker shards (crash domains). 1 preserves the classic
    /// single-worker loop, just supervised.
    pub shards: usize,
    /// Longest accepted input line, bytes; longer lines are answered
    /// with a `class:"parse"` error and skipped.
    pub max_line_bytes: usize,
    /// End-to-end p99 latency objective, milliseconds (`--slo-p99-ms`);
    /// `None` uses [`DEFAULT_SLO_P99_MS`].
    pub slo_p99_ms: Option<u64>,
    /// Deterministic fault injection for tests and chaos drills; `None`
    /// in production.
    pub chaos: Option<ChaosHook>,
}

impl Default for ServeOpts {
    fn default() -> Self {
        ServeOpts {
            queue: 16,
            default_deadline_ms: None,
            grace_ms: 10,
            breaker_threshold: aa_core::tiered::DEFAULT_BREAKER_THRESHOLD,
            breaker_cooldown: aa_core::tiered::DEFAULT_BREAKER_COOLDOWN,
            shards: 1,
            max_line_bytes: 1 << 20,
            slo_p99_ms: None,
            chaos: None,
        }
    }
}

impl std::fmt::Debug for ServeOpts {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeOpts")
            .field("queue", &self.queue)
            .field("default_deadline_ms", &self.default_deadline_ms)
            .field("grace_ms", &self.grace_ms)
            .field("breaker_threshold", &self.breaker_threshold)
            .field("breaker_cooldown", &self.breaker_cooldown)
            .field("shards", &self.shards)
            .field("max_line_bytes", &self.max_line_bytes)
            .field("slo_p99_ms", &self.slo_p99_ms)
            .field("chaos", &self.chaos.is_some())
            .finish()
    }
}

/// Reader-side bookkeeping for an admitted request, keyed by the job's
/// pool sequence number until its completion arrives. Exactly-once at
/// the serve layer: every entry is inserted before submit and removed by
/// exactly one completion.
struct Pending {
    id: serde_json::Value,
    deadline_ms: Option<u64>,
    arrived: Instant,
}

/// Registry handles for one serve session. Every count the loop keeps
/// lives in the metrics registry; [`ServeCounters`] is derived from
/// these handles at EOF.
pub(crate) struct ServeMetrics {
    pub(crate) received: aa_obs::Counter,
    pub(crate) solved: aa_obs::Counter,
    pub(crate) shed: aa_obs::Counter,
    pub(crate) expired_in_queue: aa_obs::Counter,
    pub(crate) parse_errors: aa_obs::Counter,
    pub(crate) solve_errors: aa_obs::Counter,
    pub(crate) solve_panics: aa_obs::Counter,
    pub(crate) internal_errors: aa_obs::Counter,
    pub(crate) deadline_misses: aa_obs::Counter,
    /// End-to-end latency of `status: ok` responses.
    pub(crate) latency: aa_obs::Histogram,
    /// Solve wall time per answering tier
    /// (`aa_serve_tier_solve_micros{tier=…}`).
    pub(crate) per_tier: Vec<(&'static str, aa_obs::Histogram)>,
    /// End-to-end latency per response class
    /// (`aa_slo_e2e_micros{class=…}`).
    pub(crate) per_class_e2e: Vec<(&'static str, aa_obs::Histogram)>,
    /// Burn-rate tracker against the p99 latency objective (`aa_slo_*`).
    pub(crate) slo: aa_obs::SloTracker,
}

/// Response classes with end-to-end latency semantics; each gets a
/// pre-registered `aa_slo_e2e_micros{class=…}` histogram.
const SLO_CLASSES: [&str; 8] =
    ["ok", "overloaded", "deadline", "solve", "solve_panic", "problem", "internal", "shutdown"];

impl ServeMetrics {
    pub(crate) fn with_slo_target(registry: &aa_obs::Registry, target_micros: u64) -> Self {
        ServeMetrics {
            received: registry.counter("aa_serve_received_total"),
            solved: registry.counter("aa_serve_solved_total"),
            shed: registry.counter("aa_serve_shed_total"),
            expired_in_queue: registry.counter("aa_serve_expired_in_queue_total"),
            parse_errors: registry.counter("aa_serve_parse_errors_total"),
            solve_errors: registry.counter("aa_serve_solve_errors_total"),
            solve_panics: registry.counter("aa_serve_solve_panics_total"),
            internal_errors: registry.counter("aa_serve_internal_errors_total"),
            deadline_misses: registry.counter("aa_serve_deadline_misses_total"),
            latency: registry.histogram("aa_serve_latency_micros"),
            per_tier: [Tier::BranchAndBound, Tier::Algo2Refined, Tier::Algo2, Tier::Price, Tier::Uu]
                .iter()
                .map(|t| {
                    (
                        t.name(),
                        registry.histogram_labeled("aa_serve_tier_solve_micros", "tier", t.name()),
                    )
                })
                .collect(),
            per_class_e2e: SLO_CLASSES
                .iter()
                .map(|c| (*c, registry.histogram_labeled("aa_slo_e2e_micros", "class", c)))
                .collect(),
            slo: aa_obs::SloTracker::register(registry, target_micros),
        }
    }

    /// Record one finished request against the SLO layer: the per-class
    /// end-to-end histogram plus the burn-rate tracker (only `ok`
    /// responses under the target count as good).
    pub(crate) fn observe_e2e(&self, class: &str, latency_micros: u64) {
        let latency = latency_micros.max(1);
        if let Some((_, h)) = self.per_class_e2e.iter().find(|(n, _)| *n == class) {
            h.record_micros(latency);
        }
        self.slo.observe(latency, class == "ok");
    }

    pub(crate) fn tier(&self, name: &str) -> &aa_obs::Histogram {
        self.per_tier
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, h)| h)
            .expect("every ladder tier has a pre-registered histogram")
    }

    /// The EOF snapshot. Tiers that never answered are omitted, matching
    /// the pre-registry dump (a `BTreeMap` populated on first answer).
    pub(crate) fn snapshot(&self) -> ServeCounters {
        let mut per_tier = BTreeMap::new();
        for (name, h) in &self.per_tier {
            if h.count() > 0 {
                per_tier.insert(
                    (*name).to_string(),
                    TierCounter {
                        answered: h.count(),
                        total_micros: h.sum_micros(),
                        max_micros: h.max_micros(),
                    },
                );
            }
        }
        #[allow(clippy::cast_precision_loss)]
        ServeCounters {
            received: self.received.get(),
            solved: self.solved.get(),
            shed: self.shed.get(),
            expired_in_queue: self.expired_in_queue.get(),
            parse_errors: self.parse_errors.get(),
            solve_errors: self.solve_errors.get(),
            solve_panics: self.solve_panics.get(),
            internal_errors: self.internal_errors.get(),
            deadline_misses: self.deadline_misses.get(),
            latency_p50_ms: self.latency.quantile_micros(0.50) as f64 / 1e3,
            latency_p99_ms: self.latency.quantile_micros(0.99) as f64 / 1e3,
            per_tier,
        }
    }
}

/// Run the request loop until `input` reaches EOF, then drain the pool
/// (every admitted request still gets its one response) and return the
/// session counters. Responses go to `output` one JSON object per line;
/// all accounting goes through `registry` (the `aa_serve_*` family plus
/// the pool's `aa_shard_*` gauges), so a concurrent exporter sees live
/// counts.
///
/// Handles are get-or-create: running two sessions through the same
/// registry accumulates across both (pass a fresh [`aa_obs::Registry`]
/// per session for isolated counts; the binary passes the process-global
/// one so `--metrics-addr` scrapes cover the whole run).
pub fn run_serve<R: BufRead, W: Write + Send>(
    input: R,
    output: W,
    opts: &ServeOpts,
    registry: &aa_obs::Registry,
) -> Result<ServeCounters, CliError> {
    let out = Mutex::new(output);
    let metrics = ServeMetrics::with_slo_target(
        registry,
        opts.slo_p99_ms.unwrap_or(DEFAULT_SLO_P99_MS).saturating_mul(1000),
    );
    let pending: Mutex<HashMap<u64, Pending>> = Mutex::new(HashMap::new());
    let (ctx, crx) = mpsc::channel::<ShardCompletion>();
    let pool = ShardPool::new(
        ShardConfig {
            shards: opts.shards.max(1),
            queue: opts.queue.max(1),
            cold_queue: opts.queue.max(1),
            breaker_threshold: opts.breaker_threshold,
            breaker_cooldown: opts.breaker_cooldown,
            chaos: opts.chaos.clone(),
            ..ShardConfig::default()
        },
        registry,
        // The pool's completion callback must not panic; sending on an
        // unbounded channel can't. A dropped receiver (writer bailed on
        // a dead pipe) makes this a no-op.
        Arc::new(move |c| {
            let _ = ctx.send(c);
        }),
    );

    let io_result = std::thread::scope(|s| {
        let (out, metrics, pending) = (&out, &metrics, &pending);
        let writer = s.spawn(move || writer_loop(crx, out, pending, metrics, opts));
        let read_result = reader_loop(input, &pool, out, pending, metrics, opts);
        // EOF (or a dead output pipe): draining the pool completes every
        // admitted job, and dropping it closes the completion channel so
        // the writer exits after the last response.
        pool.shutdown();
        let write_result = writer.join().expect("writer thread does not panic");
        read_result.and(write_result)
    });
    io_result?;
    Ok(metrics.snapshot())
}

/// Outcome of one bounded line read.
pub(crate) enum LineRead {
    /// End of input.
    Eof,
    /// A complete line is in the buffer (trailing newline stripped).
    Line,
    /// The line exceeded the cap; the buffer holds its prefix and the
    /// rest was discarded up to the next newline.
    Oversized,
}

/// Read one `\n`-terminated line into `buf`, never buffering more than
/// `max + 1` bytes of it. The overflow tail is consumed (discarded) so
/// the reader stays line-synchronized for the next request.
pub(crate) fn read_bounded_line<R: BufRead>(
    input: &mut R,
    buf: &mut Vec<u8>,
    max: usize,
) -> std::io::Result<LineRead> {
    buf.clear();
    let n = std::io::Read::take(&mut *input, max as u64 + 1).read_until(b'\n', buf)?;
    if n == 0 {
        return Ok(LineRead::Eof);
    }
    if buf.last() == Some(&b'\n') {
        buf.pop();
        if buf.last() == Some(&b'\r') {
            buf.pop();
        }
        return Ok(LineRead::Line);
    }
    if buf.len() <= max {
        // Final line without a trailing newline.
        return Ok(LineRead::Line);
    }
    // Over the cap mid-line: skip to the next newline without buffering.
    loop {
        let chunk = input.fill_buf()?;
        if chunk.is_empty() {
            break;
        }
        match chunk.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                input.consume(pos + 1);
                break;
            }
            None => {
                let len = chunk.len();
                input.consume(len);
            }
        }
    }
    Ok(LineRead::Oversized)
}

fn reader_loop<R: BufRead, W: Write>(
    mut input: R,
    pool: &ShardPool,
    out: &Mutex<W>,
    pending: &Mutex<HashMap<u64, Pending>>,
    metrics: &ServeMetrics,
    opts: &ServeOpts,
) -> std::io::Result<()> {
    let mut buf = Vec::new();
    let mut seq = 0u64;
    loop {
        match read_bounded_line(&mut input, &mut buf, opts.max_line_bytes)? {
            LineRead::Eof => return Ok(()),
            LineRead::Oversized => {
                metrics.received.inc();
                metrics.parse_errors.inc();
                respond(
                    out,
                    &ServeResponse::Error {
                        id: serde_json::Value::Null,
                        class: "parse".to_string(),
                        error: format!(
                            "request line exceeds the {} byte cap (--max-line-bytes)",
                            opts.max_line_bytes
                        ),
                    },
                )?;
                continue;
            }
            LineRead::Line => {}
        }
        let Ok(line) = std::str::from_utf8(&buf) else {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "request stream is not valid UTF-8",
            ));
        };
        if line.trim().is_empty() {
            continue;
        }
        metrics.received.inc();
        let req = match serde_json::from_str::<ServeRequest>(line) {
            Err(e) => {
                metrics.parse_errors.inc();
                respond(
                    out,
                    &ServeResponse::Error {
                        id: serde_json::Value::Null,
                        class: "parse".to_string(),
                        error: e.to_string(),
                    },
                )?;
                continue;
            }
            Ok(req) => req,
        };
        let id = req.id.clone();
        let problem = match build_problem(&req.problem) {
            Ok(p) => p,
            Err(e) => {
                metrics.solve_errors.inc();
                respond(
                    out,
                    &ServeResponse::Error {
                        id,
                        class: "problem".to_string(),
                        error: e.to_string(),
                    },
                )?;
                continue;
            }
        };
        let deadline_ms = req.deadline_ms.or(opts.default_deadline_ms);
        let arrived = Instant::now();
        let deadline = deadline_ms.map(|d| arrived + Duration::from_millis(d));
        // Insert before submit: a fast shard may complete before this
        // thread runs again, and the writer must find the entry.
        pending.lock().unwrap_or_else(|e| e.into_inner()).insert(
            seq,
            Pending { id: id.clone(), deadline_ms, arrived },
        );
        let job = ShardJob { seq, stream: req.stream, problem, deadline, arrived };
        match pool.submit(job) {
            Ok(()) => {}
            Err(e) => {
                pending.lock().unwrap_or_else(|e| e.into_inner()).remove(&seq);
                #[allow(clippy::cast_possible_truncation)]
                let waited_micros = (arrived.elapsed().as_micros() as u64).max(1);
                match e {
                    SubmitError::QueueFull { .. } => {
                        metrics.shed.inc();
                        metrics.observe_e2e("overloaded", waited_micros);
                        let retry_after_ms = estimated_drain_ms(metrics, opts.queue);
                        respond(out, &ServeResponse::Overloaded { id, retry_after_ms })?;
                    }
                    SubmitError::NoLiveShards | SubmitError::ShuttingDown => {
                        metrics.internal_errors.inc();
                        metrics.observe_e2e("internal", waited_micros);
                        respond(
                            out,
                            &ServeResponse::Error {
                                id,
                                class: "internal".to_string(),
                                error: e.to_string(),
                            },
                        )?;
                    }
                }
            }
        }
        seq += 1;
    }
}

/// Backoff hint for a shed request: queue depth × the mean solve time
/// observed so far. Pure so its invariants are property-tested: the
/// hint is monotone (non-decreasing) in queue depth and strictly
/// positive — a shed client is never told to retry in zero milliseconds.
pub fn drain_hint_ms(answered: u64, total_micros: u64, queue: usize) -> u64 {
    // 1 ms/solve assumed before any solve completes.
    let mean_micros = total_micros.checked_div(answered).unwrap_or(1000);
    (mean_micros.saturating_mul(queue as u64) / 1000).max(1)
}

/// [`drain_hint_ms`] fed from the per-tier histograms.
pub(crate) fn estimated_drain_ms(metrics: &ServeMetrics, queue: usize) -> u64 {
    let (answered, micros) = metrics
        .per_tier
        .iter()
        .fold((0_u64, 0_u64), |(a, m), (_, h)| (a + h.count(), m + h.sum_micros()));
    drain_hint_ms(answered, micros, queue)
}

fn writer_loop<W: Write>(
    crx: Receiver<ShardCompletion>,
    out: &Mutex<W>,
    pending: &Mutex<HashMap<u64, Pending>>,
    metrics: &ServeMetrics,
    opts: &ServeOpts,
) -> std::io::Result<()> {
    while let Ok(completion) = crx.recv() {
        let Some(p) = pending
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&completion.seq)
        else {
            // Exactly-once is enforced by the pool; an unknown seq would
            // mean a duplicate completion. Don't answer it twice.
            continue;
        };
        if write_completion(completion, p, out, metrics, opts).is_err() {
            // Output pipe is gone: stop writing. The pool keeps
            // draining into the dead channel and run_serve returns the
            // error after shutdown.
            return Err(std::io::Error::new(
                std::io::ErrorKind::BrokenPipe,
                "response pipe closed",
            ));
        }
    }
    Ok(())
}

fn write_completion<W: Write>(
    completion: ShardCompletion,
    p: Pending,
    out: &Mutex<W>,
    metrics: &ServeMetrics,
    opts: &ServeOpts,
) -> std::io::Result<()> {
    let id = p.id;
    let latency_ms = p.arrived.elapsed().as_secs_f64() * 1e3;
    // Floor at 1 µs so percentile snapshots of sub-microsecond
    // responses stay nonzero.
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let latency_micros = ((latency_ms * 1e3) as u64).max(1);
    match completion.outcome {
        Ok(solved) => {
            metrics.solved.inc();
            metrics.latency.record_micros(latency_micros);
            metrics.observe_e2e("ok", latency_micros);
            metrics
                .tier(solved.degradation.tier.name())
                .record_micros(completion.solve_micros.max(1));
            if let Some(d) = p.deadline_ms {
                if latency_ms > (d + opts.grace_ms) as f64 {
                    metrics.deadline_misses.inc();
                }
            }
            respond(
                out,
                &ServeResponse::Ok {
                    id,
                    tier: solved.degradation.tier.name().to_string(),
                    degraded: solved.degradation.degraded,
                    utility: solved.utility,
                    server: solved.assignment.server,
                    allocation: solved.assignment.amount,
                    latency_ms,
                },
            )
        }
        Err(ShardError::Expired) => {
            metrics.expired_in_queue.inc();
            metrics.observe_e2e("deadline", latency_micros);
            let d = p.deadline_ms.unwrap_or(0);
            respond(
                out,
                &ServeResponse::Error {
                    id,
                    class: "deadline".to_string(),
                    error: format!(
                        "deadline ({d} ms) expired after {:.1} ms in queue",
                        completion.waited_micros as f64 / 1e3
                    ),
                },
            )
        }
        Err(ShardError::Solve(e)) => {
            metrics.solve_errors.inc();
            let class = match &e {
                SolveError::Panicked(_) => {
                    metrics.solve_panics.inc();
                    "solve_panic"
                }
                SolveError::DeadlineExceeded | SolveError::Cancelled => "deadline",
                _ => "solve",
            };
            metrics.observe_e2e(class, latency_micros);
            respond(
                out,
                &ServeResponse::Error {
                    id,
                    class: class.to_string(),
                    error: e.to_string(),
                },
            )
        }
        Err(e @ ShardError::Crashed) => {
            metrics.solve_errors.inc();
            metrics.solve_panics.inc();
            metrics.observe_e2e("solve_panic", latency_micros);
            respond(
                out,
                &ServeResponse::Error {
                    id,
                    class: "solve_panic".to_string(),
                    error: format!("{e}; the shard is restarting"),
                },
            )
        }
        Err(e @ ShardError::Drained) => {
            metrics.internal_errors.inc();
            metrics.observe_e2e("internal", latency_micros);
            respond(
                out,
                &ServeResponse::Error {
                    id,
                    class: "internal".to_string(),
                    error: format!("{e}; safe to retry"),
                },
            )
        }
    }
}

pub(crate) fn respond<W: Write>(out: &Mutex<W>, response: &ServeResponse) -> std::io::Result<()> {
    let line = serde_json::to_string(response).expect("responses always serialize");
    let mut w = out.lock().unwrap_or_else(|e| e.into_inner());
    writeln!(w, "{line}")?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use aa_core::shard::FaultAction;
    use aa_utility::UtilitySpec;

    fn request_line(id: u64, deadline_ms: Option<u64>, threads: usize) -> String {
        let problem = ProblemFile {
            servers: 4,
            capacity: 100.0,
            threads: (0..threads)
                .map(|i| UtilitySpec::Power {
                    scale: 1.0 + (i % 7) as f64,
                    beta: 0.5,
                    cap: 100.0,
                })
                .collect(),
        };
        let problem = serde_json::to_string(&problem).unwrap();
        match deadline_ms {
            Some(d) => format!(r#"{{"id":{id},"deadline_ms":{d},"problem":{problem}}}"#),
            None => format!(r#"{{"id":{id},"problem":{problem}}}"#),
        }
    }

    fn stream_request_line(id: u64, stream: u64, threads: usize) -> String {
        let problem = ProblemFile {
            servers: 4,
            capacity: 100.0,
            threads: (0..threads)
                .map(|i| UtilitySpec::Power {
                    scale: 1.0 + (i % 7) as f64,
                    beta: 0.5,
                    cap: 100.0,
                })
                .collect(),
        };
        let problem = serde_json::to_string(&problem).unwrap();
        format!(r#"{{"id":{id},"stream":{stream},"problem":{problem}}}"#)
    }

    fn run(input: &str, opts: &ServeOpts) -> (ServeCounters, Vec<serde_json::Value>) {
        let mut output: Vec<u8> = Vec::new();
        // A per-session registry keeps tests isolated from each other
        // and from the process-global registry.
        let registry = aa_obs::Registry::new();
        let counters = run_serve(input.as_bytes(), &mut output, opts, &registry).unwrap();
        let responses = String::from_utf8(output)
            .unwrap()
            .lines()
            .map(|l| serde_json::from_str(l).unwrap())
            .collect();
        (counters, responses)
    }

    #[test]
    fn solves_requests_and_echoes_ids() {
        let input = format!("{}\n{}\n", request_line(1, None, 6), request_line(2, None, 8));
        let (counters, responses) = run(&input, &ServeOpts::default());
        assert_eq!(counters.received, 2);
        assert_eq!(counters.solved, 2);
        assert_eq!(counters.shed, 0);
        assert_eq!(responses.len(), 2);
        let mut ids: Vec<u64> =
            responses.iter().map(|r| r["id"].as_u64().unwrap()).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![1, 2]);
        for r in &responses {
            assert_eq!(r["status"], "ok", "{r:?}");
            assert!(r["utility"].as_f64().unwrap() > 0.0);
            assert_eq!(r["server"].as_array().unwrap().len(), r["allocation"].as_array().unwrap().len());
        }
        // Per-tier accounting saw both answers.
        let answered: u64 = counters.per_tier.values().map(|t| t.answered).sum();
        assert_eq!(answered, 2);
        // Latency percentiles cover the solved requests: positive,
        // ordered, and p99 bounded by the worst observed response.
        assert!(counters.latency_p50_ms > 0.0, "{counters:?}");
        assert!(counters.latency_p99_ms >= counters.latency_p50_ms, "{counters:?}");
        let worst = responses
            .iter()
            .map(|r| r["latency_ms"].as_f64().unwrap())
            .fold(0.0_f64, f64::max);
        assert!(counters.latency_p99_ms <= worst + 1e-9, "{counters:?}");
    }

    #[test]
    fn live_registry_sees_the_same_counts_as_the_snapshot() {
        let registry = aa_obs::Registry::new();
        let mut output: Vec<u8> = Vec::new();
        let input = format!("{}\n{}\n", request_line(1, None, 6), request_line(2, None, 8));
        let counters =
            run_serve(input.as_bytes(), &mut output, &ServeOpts::default(), &registry).unwrap();
        // The registry holds the session's numbers — what a concurrent
        // /metrics scrape would have reported at EOF.
        let prom = aa_obs::export::prometheus_text(&registry);
        assert!(prom.contains("aa_serve_received_total 2"), "{prom}");
        assert!(prom.contains("aa_serve_solved_total 2"), "{prom}");
        // The shard tier exports through the same registry.
        assert!(prom.contains("aa_shard_solves_total"), "{prom}");
        assert!(prom.contains("aa_supervisor_restarts_total 0"), "{prom}");
        // The SLO layer tracked both ok responses end-to-end.
        assert!(prom.contains("aa_slo_target_p99_micros 100000"), "{prom}");
        assert!(prom.contains(r#"aa_slo_e2e_micros_count{class="ok"} 2"#), "{prom}");
        assert!(prom.contains("aa_slo_good_total"), "{prom}");
        assert!(prom.contains("aa_slo_burn_rate"), "{prom}");
        assert_eq!(counters.received, 2);
        assert_eq!(counters.solved, 2);
    }

    #[test]
    fn burst_beyond_the_queue_is_shed_with_backoff_hints() {
        // First request is large and unbudgeted: the shard is busy for
        // many milliseconds while the reader (all in-memory) admits one
        // more and must shed the rest of the burst.
        let mut input = request_line(0, None, 4000);
        for i in 1..=6 {
            input.push('\n');
            input.push_str(&request_line(i, None, 4));
        }
        input.push('\n');
        let opts = ServeOpts { queue: 1, ..ServeOpts::default() };
        let (counters, responses) = run(&input, &opts);
        assert_eq!(counters.received, 7);
        assert!(counters.shed > 0, "burst was not shed: {counters:?}");
        assert_eq!(counters.solved + counters.shed, 7);
        assert_eq!(counters.deadline_misses, 0);
        let overloaded: Vec<_> =
            responses.iter().filter(|r| r["status"] == "overloaded").collect();
        assert_eq!(overloaded.len() as u64, counters.shed);
        for r in &overloaded {
            assert!(r["retry_after_ms"].as_u64().unwrap() >= 1);
        }
        // Every line got exactly one response.
        assert_eq!(responses.len(), 7);
    }

    #[test]
    fn tight_deadlines_degrade_but_never_fail() {
        let input = format!("{}\n", request_line(9, Some(1), 3000));
        let (counters, responses) = run(&input, &ServeOpts::default());
        assert_eq!(counters.solved, 1);
        assert_eq!(counters.solve_errors, 0);
        assert_eq!(responses[0]["status"], "ok");
        // 1 ms cannot fit the full ladder on 3000 threads: degraded.
        assert_eq!(responses[0]["degraded"].as_bool(), Some(true), "{:?}", responses[0]);
    }

    #[test]
    fn deadline_that_lapses_in_queue_is_answered_without_a_solve() {
        // Large unbudgeted head request occupies the shard; the second
        // request's 1 ms deadline lapses while it waits.
        let input = format!(
            "{}\n{}\n",
            request_line(0, None, 4000),
            request_line(1, Some(1), 4)
        );
        let (counters, responses) = run(&input, &ServeOpts::default());
        assert_eq!(counters.expired_in_queue, 1, "{counters:?}");
        let expired = responses.iter().find(|r| r["id"].as_u64() == Some(1)).unwrap();
        assert_eq!(expired["status"], "error");
        assert_eq!(expired["class"], "deadline");
    }

    #[test]
    fn malformed_lines_get_parse_errors_and_serving_continues() {
        let input = format!("this is not json\n{}\n", request_line(5, None, 4));
        let (counters, responses) = run(&input, &ServeOpts::default());
        assert_eq!(counters.parse_errors, 1);
        assert_eq!(counters.solved, 1);
        let parse = responses.iter().find(|r| r["status"] == "error").unwrap();
        assert_eq!(parse["class"], "parse");
        assert_eq!(parse["id"], serde_json::Value::Null);
        assert!(responses
            .iter()
            .any(|r| r["status"] == "ok" && r["id"].as_u64() == Some(5)));
    }

    #[test]
    fn invalid_problems_are_typed_not_fatal() {
        let bad = r#"{"id":3,"problem":{"servers":0,"capacity":10.0,"threads":[]}}"#;
        let input = format!("{bad}\n{}\n", request_line(4, None, 4));
        let (counters, responses) = run(&input, &ServeOpts::default());
        assert_eq!(counters.solve_errors, 1);
        assert_eq!(counters.solved, 1);
        let err = responses.iter().find(|r| r["id"].as_u64() == Some(3)).unwrap();
        assert_eq!(err["status"], "error");
        assert_eq!(err["class"], "problem");
    }

    #[test]
    fn counters_serialize_for_the_shutdown_dump() {
        let input = format!("{}\n", request_line(1, None, 4));
        let (counters, _) = run(&input, &ServeOpts::default());
        let json = serde_json::to_string_pretty(&counters).unwrap();
        let back: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(back["solved"].as_u64(), Some(1));
        assert!(back["per_tier"].as_object().is_some());
    }

    #[test]
    fn empty_input_returns_zeroed_counters() {
        let (counters, responses) = run("", &ServeOpts::default());
        assert_eq!(counters, ServeCounters::default());
        assert!(responses.is_empty());
    }

    #[test]
    fn sharded_serve_answers_keyed_streams_from_fixed_shards() {
        let mut input = String::new();
        for i in 0..24u64 {
            input.push_str(&stream_request_line(i, i % 6, 6));
            input.push('\n');
        }
        let registry = aa_obs::Registry::new();
        let mut output: Vec<u8> = Vec::new();
        let opts = ServeOpts { shards: 3, queue: 64, ..ServeOpts::default() };
        let counters = run_serve(input.as_bytes(), &mut output, &opts, &registry).unwrap();
        assert_eq!(counters.received, 24);
        assert_eq!(counters.solved, 24);
        assert_eq!(counters.shed, 0);
        // Per-shard accounting flowed through the shared registry.
        let prom = aa_obs::export::prometheus_text(&registry);
        assert!(prom.contains(r#"aa_shard_solves_total{shard="0"}"#), "{prom}");
    }

    #[test]
    fn oversized_line_gets_a_parse_error_and_serving_continues() {
        let big = format!(r#"{{"id":1,"problem":"{}"}}"#, "x".repeat(8192));
        let input = format!("{big}\n{}\n", request_line(2, None, 4));
        let opts = ServeOpts { max_line_bytes: 1024, ..ServeOpts::default() };
        let (counters, responses) = run(&input, &opts);
        assert_eq!(counters.received, 2);
        assert_eq!(counters.parse_errors, 1);
        assert_eq!(counters.solved, 1);
        let parse = responses.iter().find(|r| r["status"] == "error").unwrap();
        assert_eq!(parse["class"], "parse");
        assert!(parse["error"].as_str().unwrap().contains("max-line-bytes"));
        assert!(responses
            .iter()
            .any(|r| r["status"] == "ok" && r["id"].as_u64() == Some(2)));
    }

    #[test]
    fn shard_death_yields_structured_errors_and_serving_continues() {
        // Kill the only shard on its first solve. The in-flight request
        // is answered `solve_panic`; anything queued behind it drains as
        // `internal`; requests arriving after the restart solve normally.
        // The old loop propagated the panic and died (serve.rs used to
        // break on worker disconnect) — this is the regression test.
        let chaos: ChaosHook = Arc::new(|_shard, seq| {
            if seq == 1 {
                FaultAction::KillShard
            } else {
                FaultAction::None
            }
        });
        let mut input = String::new();
        for i in 0..6u64 {
            input.push_str(&stream_request_line(i, 1, 6));
            input.push('\n');
        }
        let opts = ServeOpts { chaos: Some(chaos), queue: 64, ..ServeOpts::default() };
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let (counters, responses) = run(&input, &opts);
        std::panic::set_hook(prev);
        // The loop survived to EOF and every request was answered once.
        assert_eq!(counters.received, 6);
        assert_eq!(responses.len(), 6);
        assert_eq!(counters.solve_panics, 1, "{counters:?}");
        assert!(
            responses.iter().any(|r| r["class"] == "solve_panic"),
            "{responses:?}"
        );
        // Everything not caught in the crash was actually solved or
        // answered with a retryable internal error.
        for r in &responses {
            let ok = r["status"] == "ok"
                || r["class"] == "solve_panic"
                || r["class"] == "internal";
            assert!(ok, "unexpected response {r:?}");
        }
        assert_eq!(
            counters.solved + counters.solve_panics + counters.internal_errors,
            6,
            "{counters:?}"
        );
    }

    #[test]
    fn drain_hint_is_monotone_and_positive() {
        assert_eq!(drain_hint_ms(0, 0, 0), 1);
        assert_eq!(drain_hint_ms(0, 0, 16), 16);
        let mut last = 0;
        for queue in 0..200 {
            let hint = drain_hint_ms(10, 50_000, queue);
            assert!(hint >= 1);
            assert!(hint >= last, "hint regressed at queue={queue}");
            last = hint;
        }
    }
}
