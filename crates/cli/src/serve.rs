//! `aa-solve serve` — a deadline-aware LDJSON request loop with
//! bounded-queue overload shedding.
//!
//! Requests arrive one JSON object per line on stdin; responses leave
//! one JSON object per line on stdout, in completion order (clients
//! correlate by echoed `id`). The loop is two threads and one bounded
//! queue:
//!
//! * the **reader** parses lines and admits jobs with a non-blocking
//!   `try_send`. A full queue is answered immediately with
//!   `{"status":"overloaded","retry_after_ms":…}` — load is shed at the
//!   door instead of growing an unbounded backlog that makes every
//!   deadline unmeetable;
//! * the **worker** solves admitted jobs with a shared
//!   [`TieredSolver`], giving each request whatever remains of its
//!   deadline after queueing delay. A request whose deadline lapsed in
//!   the queue is answered `{"status":"error","class":"deadline"}`
//!   without wasting a solve on it.
//!
//! All accounting flows through an [`aa_obs::Registry`] (the
//! `aa_serve_*` metric family), so a live `--metrics-addr` scrape sees
//! the same numbers the shutdown dump reports. [`ServeCounters`] is a
//! snapshot of that registry taken at EOF; its latency percentiles are
//! derived from the `aa_serve_latency_micros` histogram (log-linear
//! buckets, capped at the exact observed maximum).

use std::collections::BTreeMap;
use std::io::{BufRead, Write};
use std::sync::mpsc::{self, Receiver, SyncSender, TrySendError};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use aa_core::tiered::Tier;
use aa_core::{Budget, SolveError, TieredSolver};
use serde::{Deserialize, Serialize};

use crate::{build_problem, CliError, ProblemFile};

/// One request line: an optional correlation `id` (echoed back
/// verbatim), an optional per-request deadline, and the problem.
#[derive(Debug, Clone)]
pub struct ServeRequest {
    /// Client correlation token; any JSON value, echoed in the response.
    pub id: serde_json::Value,
    /// Wall-clock deadline for this request, milliseconds from arrival.
    /// Falls back to the loop's `--deadline-ms` default, else unlimited.
    pub deadline_ms: Option<u64>,
    /// The problem to solve.
    pub problem: ProblemFile,
}

// Hand-written so `id` and `deadline_ms` may be omitted entirely; the
// derive treats every field as required.
impl Deserialize for ServeRequest {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let obj = serde::expect_obj(v, "ServeRequest")?;
        let id = v.get("id").cloned().unwrap_or(serde::Value::Null);
        let deadline_ms = match v.get("deadline_ms") {
            None | Some(serde::Value::Null) => None,
            Some(d) => Some(d.as_u64().ok_or_else(|| {
                format!("ServeRequest.deadline_ms: expected unsigned integer, found {d:?}")
            })?),
        };
        let problem = serde::de_field(obj, "problem", "ServeRequest")?;
        Ok(ServeRequest { id, deadline_ms, problem })
    }
}

/// One response line.
#[derive(Debug, Clone, Serialize)]
#[serde(tag = "status", rename_all = "snake_case")]
pub enum ServeResponse {
    /// The solve finished (possibly degraded — see `tier`).
    Ok {
        /// Echoed request id.
        id: serde_json::Value,
        /// Name of the ladder tier that answered.
        tier: String,
        /// True when the answer is anything less than the top tier
        /// completing.
        degraded: bool,
        /// Total utility of the assignment.
        utility: f64,
        /// Server index per thread.
        server: Vec<usize>,
        /// Allocation per thread.
        allocation: Vec<f64>,
        /// End-to-end latency (arrival → response), milliseconds.
        latency_ms: f64,
    },
    /// The admission queue was full; nothing was attempted. Retry after
    /// the hinted backoff.
    Overloaded {
        /// Echoed request id.
        id: serde_json::Value,
        /// Suggested client backoff: the queue's current estimated
        /// drain time.
        retry_after_ms: u64,
    },
    /// The request failed. `class` is stable for dispatch; `error` is
    /// human-readable.
    Error {
        /// Echoed request id (`null` for unparseable lines).
        id: serde_json::Value,
        /// Error class: `parse`, `problem`, `deadline`, or `solve`.
        class: String,
        /// Human-readable detail.
        error: String,
    },
}

/// Latency accounting for one ladder tier: a snapshot of the
/// `aa_serve_tier_solve_micros{tier=…}` histogram.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct TierCounter {
    /// Requests this tier answered.
    pub answered: u64,
    /// Total solve wall time across those answers, microseconds.
    pub total_micros: u64,
    /// Worst single solve wall time, microseconds.
    pub max_micros: u64,
}

/// Counters accumulated over one serve session, dumped at shutdown: a
/// snapshot of the session's `aa_serve_*` registry entries taken at EOF.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct ServeCounters {
    /// Non-empty request lines read.
    pub received: u64,
    /// Requests answered with `status: ok`.
    pub solved: u64,
    /// Requests shed at admission (queue full).
    pub shed: u64,
    /// Admitted requests whose deadline lapsed before the worker got to
    /// them (answered without a solve).
    pub expired_in_queue: u64,
    /// Lines that were not valid requests.
    pub parse_errors: u64,
    /// Admitted requests whose solve failed (bad problem, cancellation).
    pub solve_errors: u64,
    /// Solved requests whose end-to-end latency exceeded their deadline
    /// by more than the grace window.
    pub deadline_misses: u64,
    /// Median end-to-end latency over `status: ok` responses,
    /// milliseconds (histogram-derived, capped at the exact observed
    /// maximum; 0 when nothing was solved).
    pub latency_p50_ms: f64,
    /// 99th-percentile end-to-end latency over `status: ok` responses,
    /// milliseconds (histogram-derived, capped at the exact observed
    /// maximum; 0 when nothing was solved).
    pub latency_p99_ms: f64,
    /// Latency accounting per answering tier.
    pub per_tier: BTreeMap<String, TierCounter>,
}

/// Configuration for [`run_serve`].
#[derive(Debug, Clone)]
pub struct ServeOpts {
    /// Admission queue depth; requests beyond it are shed.
    pub queue: usize,
    /// Deadline for requests that don't carry their own, milliseconds.
    pub default_deadline_ms: Option<u64>,
    /// Slack added to a deadline before a completed solve counts as a
    /// miss, milliseconds.
    pub grace_ms: u64,
    /// Circuit breaker: consecutive tier failures before it opens.
    pub breaker_threshold: u32,
    /// Circuit breaker: requests a tripped tier sits out.
    pub breaker_cooldown: u64,
}

impl Default for ServeOpts {
    fn default() -> Self {
        ServeOpts {
            queue: 16,
            default_deadline_ms: None,
            grace_ms: 10,
            breaker_threshold: aa_core::tiered::DEFAULT_BREAKER_THRESHOLD,
            breaker_cooldown: aa_core::tiered::DEFAULT_BREAKER_COOLDOWN,
        }
    }
}

struct Job {
    req: ServeRequest,
    arrived: Instant,
}

/// Registry handles for one serve session. Every count the loop keeps
/// lives in the metrics registry; [`ServeCounters`] is derived from
/// these handles at EOF.
struct ServeMetrics {
    received: aa_obs::Counter,
    solved: aa_obs::Counter,
    shed: aa_obs::Counter,
    expired_in_queue: aa_obs::Counter,
    parse_errors: aa_obs::Counter,
    solve_errors: aa_obs::Counter,
    deadline_misses: aa_obs::Counter,
    /// End-to-end latency of `status: ok` responses.
    latency: aa_obs::Histogram,
    /// Solve wall time per answering tier
    /// (`aa_serve_tier_solve_micros{tier=…}`).
    per_tier: Vec<(&'static str, aa_obs::Histogram)>,
}

impl ServeMetrics {
    fn new(registry: &aa_obs::Registry) -> Self {
        ServeMetrics {
            received: registry.counter("aa_serve_received_total"),
            solved: registry.counter("aa_serve_solved_total"),
            shed: registry.counter("aa_serve_shed_total"),
            expired_in_queue: registry.counter("aa_serve_expired_in_queue_total"),
            parse_errors: registry.counter("aa_serve_parse_errors_total"),
            solve_errors: registry.counter("aa_serve_solve_errors_total"),
            deadline_misses: registry.counter("aa_serve_deadline_misses_total"),
            latency: registry.histogram("aa_serve_latency_micros"),
            per_tier: [Tier::BranchAndBound, Tier::Algo2Refined, Tier::Algo2, Tier::Uu]
                .iter()
                .map(|t| {
                    (
                        t.name(),
                        registry.histogram_labeled("aa_serve_tier_solve_micros", "tier", t.name()),
                    )
                })
                .collect(),
        }
    }

    fn tier(&self, name: &str) -> &aa_obs::Histogram {
        self.per_tier
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, h)| h)
            .expect("every ladder tier has a pre-registered histogram")
    }

    /// The EOF snapshot. Tiers that never answered are omitted, matching
    /// the pre-registry dump (a `BTreeMap` populated on first answer).
    fn snapshot(&self) -> ServeCounters {
        let mut per_tier = BTreeMap::new();
        for (name, h) in &self.per_tier {
            if h.count() > 0 {
                per_tier.insert(
                    (*name).to_string(),
                    TierCounter {
                        answered: h.count(),
                        total_micros: h.sum_micros(),
                        max_micros: h.max_micros(),
                    },
                );
            }
        }
        #[allow(clippy::cast_precision_loss)]
        ServeCounters {
            received: self.received.get(),
            solved: self.solved.get(),
            shed: self.shed.get(),
            expired_in_queue: self.expired_in_queue.get(),
            parse_errors: self.parse_errors.get(),
            solve_errors: self.solve_errors.get(),
            deadline_misses: self.deadline_misses.get(),
            latency_p50_ms: self.latency.quantile_micros(0.50) as f64 / 1e3,
            latency_p99_ms: self.latency.quantile_micros(0.99) as f64 / 1e3,
            per_tier,
        }
    }
}

/// Run the request loop until `input` reaches EOF, then drain the queue
/// and return the session counters. Responses go to `output` one JSON
/// object per line; all accounting goes through `registry` (the
/// `aa_serve_*` family), so a concurrent exporter sees live counts.
///
/// Handles are get-or-create: running two sessions through the same
/// registry accumulates across both (pass a fresh [`aa_obs::Registry`]
/// per session for isolated counts; the binary passes the process-global
/// one so `--metrics-addr` scrapes cover the whole run).
pub fn run_serve<R: BufRead, W: Write + Send>(
    input: R,
    output: W,
    opts: &ServeOpts,
    registry: &aa_obs::Registry,
) -> Result<ServeCounters, CliError> {
    let out = Mutex::new(output);
    let metrics = ServeMetrics::new(registry);
    // One stream → one worker → one warm state: the solver's Algo2 tier
    // keeps its incremental `WarmState` across this stream's requests
    // (answers stay bit-identical to the cold path).
    let solver = TieredSolver::new()
        .breaker(opts.breaker_threshold, opts.breaker_cooldown)
        .warm();
    let (tx, rx) = mpsc::sync_channel::<Job>(opts.queue.max(1));

    let io_result = std::thread::scope(|s| {
        let (solver, out, metrics) = (&solver, &out, &metrics);
        s.spawn(move || worker_loop(rx, solver, out, metrics, opts));
        let result = reader_loop(input, &tx, out, metrics, opts.queue);
        // EOF (or a dead output pipe): closing the channel lets the
        // worker drain the backlog and exit, and the scope joins it.
        drop(tx);
        result
    });
    io_result?;
    Ok(metrics.snapshot())
}

fn reader_loop<R: BufRead, W: Write>(
    input: R,
    tx: &SyncSender<Job>,
    out: &Mutex<W>,
    metrics: &ServeMetrics,
    queue: usize,
) -> std::io::Result<()> {
    for line in input.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        metrics.received.inc();
        match serde_json::from_str::<ServeRequest>(&line) {
            Err(e) => {
                metrics.parse_errors.inc();
                respond(
                    out,
                    &ServeResponse::Error {
                        id: serde_json::Value::Null,
                        class: "parse".to_string(),
                        error: e.to_string(),
                    },
                )?;
            }
            Ok(req) => {
                let id = req.id.clone();
                match tx.try_send(Job { req, arrived: Instant::now() }) {
                    Ok(()) => {}
                    Err(TrySendError::Full(_)) => {
                        let retry_after_ms = estimated_drain_ms(metrics, queue);
                        metrics.shed.inc();
                        respond(out, &ServeResponse::Overloaded { id, retry_after_ms })?;
                    }
                    // Worker gone (panicked): stop reading; the scope
                    // join below will propagate the panic.
                    Err(TrySendError::Disconnected(_)) => break,
                }
            }
        }
    }
    Ok(())
}

/// Backoff hint for a shed request: queue depth × the mean solve time
/// observed so far (1 ms floor before any solve completes), read from
/// the per-tier histograms.
fn estimated_drain_ms(metrics: &ServeMetrics, queue: usize) -> u64 {
    let (answered, micros) = metrics
        .per_tier
        .iter()
        .fold((0_u64, 0_u64), |(a, m), (_, h)| (a + h.count(), m + h.sum_micros()));
    let mean_micros = micros.checked_div(answered).unwrap_or(1000);
    (mean_micros.saturating_mul(queue as u64) / 1000).max(1)
}

fn worker_loop<W: Write>(
    rx: Receiver<Job>,
    solver: &TieredSolver,
    out: &Mutex<W>,
    metrics: &ServeMetrics,
    opts: &ServeOpts,
) {
    while let Ok(job) = rx.recv() {
        if handle_job(job, solver, out, metrics, opts).is_err() {
            // Output pipe is gone; keep draining so the reader's sends
            // don't wedge, but stop writing.
            for _ in rx.iter() {}
            return;
        }
    }
}

fn handle_job<W: Write>(
    job: Job,
    solver: &TieredSolver,
    out: &Mutex<W>,
    metrics: &ServeMetrics,
    opts: &ServeOpts,
) -> std::io::Result<()> {
    let id = job.req.id;
    let deadline_ms = job.req.deadline_ms.or(opts.default_deadline_ms);
    let queued_ms = job.arrived.elapsed().as_secs_f64() * 1e3;

    // A deadline that lapsed in the queue: answering takes microseconds,
    // solving would take the whole ladder — shed it here.
    if let Some(d) = deadline_ms {
        if queued_ms >= d as f64 {
            metrics.expired_in_queue.inc();
            return respond(
                out,
                &ServeResponse::Error {
                    id,
                    class: "deadline".to_string(),
                    error: format!("deadline ({d} ms) expired after {queued_ms:.1} ms in queue"),
                },
            );
        }
    }

    let problem = match build_problem(&job.req.problem) {
        Ok(p) => p,
        Err(e) => {
            metrics.solve_errors.inc();
            return respond(
                out,
                &ServeResponse::Error {
                    id,
                    class: "problem".to_string(),
                    error: e.to_string(),
                },
            );
        }
    };

    let budget = match deadline_ms {
        Some(d) => {
            let remaining = (d as f64 - queued_ms).max(0.0) / 1e3;
            Budget::with_deadline(Duration::from_secs_f64(remaining))
        }
        None => Budget::unlimited(),
    };

    let solve_start = Instant::now();
    match solver.try_solve_within(&problem, &budget) {
        Ok(solved) => {
            let solve_micros = solve_start.elapsed().as_micros() as u64;
            let latency_ms = job.arrived.elapsed().as_secs_f64() * 1e3;
            metrics.solved.inc();
            // Floor at 1 µs so percentile snapshots of sub-microsecond
            // responses stay nonzero.
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            metrics.latency.record_micros(((latency_ms * 1e3) as u64).max(1));
            metrics
                .tier(solved.degradation.tier.name())
                .record_micros(solve_micros.max(1));
            if let Some(d) = deadline_ms {
                if latency_ms > (d + opts.grace_ms) as f64 {
                    metrics.deadline_misses.inc();
                }
            }
            respond(
                out,
                &ServeResponse::Ok {
                    id,
                    tier: solved.degradation.tier.name().to_string(),
                    degraded: solved.degradation.degraded,
                    utility: solved.utility,
                    server: solved.assignment.server,
                    allocation: solved.assignment.amount,
                    latency_ms,
                },
            )
        }
        Err(e) => {
            metrics.solve_errors.inc();
            let class = match e {
                SolveError::DeadlineExceeded | SolveError::Cancelled => "deadline",
                _ => "solve",
            };
            respond(
                out,
                &ServeResponse::Error {
                    id,
                    class: class.to_string(),
                    error: e.to_string(),
                },
            )
        }
    }
}

fn respond<W: Write>(out: &Mutex<W>, response: &ServeResponse) -> std::io::Result<()> {
    let line = serde_json::to_string(response).expect("responses always serialize");
    let mut w = out.lock().unwrap();
    writeln!(w, "{line}")?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use aa_utility::UtilitySpec;

    fn request_line(id: u64, deadline_ms: Option<u64>, threads: usize) -> String {
        let problem = ProblemFile {
            servers: 4,
            capacity: 100.0,
            threads: (0..threads)
                .map(|i| UtilitySpec::Power {
                    scale: 1.0 + (i % 7) as f64,
                    beta: 0.5,
                    cap: 100.0,
                })
                .collect(),
        };
        let problem = serde_json::to_string(&problem).unwrap();
        match deadline_ms {
            Some(d) => format!(r#"{{"id":{id},"deadline_ms":{d},"problem":{problem}}}"#),
            None => format!(r#"{{"id":{id},"problem":{problem}}}"#),
        }
    }

    fn run(input: &str, opts: &ServeOpts) -> (ServeCounters, Vec<serde_json::Value>) {
        let mut output: Vec<u8> = Vec::new();
        // A per-session registry keeps tests isolated from each other
        // and from the process-global registry.
        let registry = aa_obs::Registry::new();
        let counters = run_serve(input.as_bytes(), &mut output, opts, &registry).unwrap();
        let responses = String::from_utf8(output)
            .unwrap()
            .lines()
            .map(|l| serde_json::from_str(l).unwrap())
            .collect();
        (counters, responses)
    }

    #[test]
    fn solves_requests_and_echoes_ids() {
        let input = format!("{}\n{}\n", request_line(1, None, 6), request_line(2, None, 8));
        let (counters, responses) = run(&input, &ServeOpts::default());
        assert_eq!(counters.received, 2);
        assert_eq!(counters.solved, 2);
        assert_eq!(counters.shed, 0);
        assert_eq!(responses.len(), 2);
        let mut ids: Vec<u64> =
            responses.iter().map(|r| r["id"].as_u64().unwrap()).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![1, 2]);
        for r in &responses {
            assert_eq!(r["status"], "ok", "{r:?}");
            assert!(r["utility"].as_f64().unwrap() > 0.0);
            assert_eq!(r["server"].as_array().unwrap().len(), r["allocation"].as_array().unwrap().len());
        }
        // Per-tier accounting saw both answers.
        let answered: u64 = counters.per_tier.values().map(|t| t.answered).sum();
        assert_eq!(answered, 2);
        // Latency percentiles cover the solved requests: positive,
        // ordered, and p99 bounded by the worst observed response.
        assert!(counters.latency_p50_ms > 0.0, "{counters:?}");
        assert!(counters.latency_p99_ms >= counters.latency_p50_ms, "{counters:?}");
        let worst = responses
            .iter()
            .map(|r| r["latency_ms"].as_f64().unwrap())
            .fold(0.0_f64, f64::max);
        assert!(counters.latency_p99_ms <= worst + 1e-9, "{counters:?}");
    }

    #[test]
    fn live_registry_sees_the_same_counts_as_the_snapshot() {
        let registry = aa_obs::Registry::new();
        let mut output: Vec<u8> = Vec::new();
        let input = format!("{}\n{}\n", request_line(1, None, 6), request_line(2, None, 8));
        let counters =
            run_serve(input.as_bytes(), &mut output, &ServeOpts::default(), &registry).unwrap();
        // The registry holds the session's numbers — what a concurrent
        // /metrics scrape would have reported at EOF.
        let prom = aa_obs::export::prometheus_text(&registry);
        assert!(prom.contains("aa_serve_received_total 2"), "{prom}");
        assert!(prom.contains("aa_serve_solved_total 2"), "{prom}");
        assert_eq!(counters.received, 2);
        assert_eq!(counters.solved, 2);
    }

    #[test]
    fn burst_beyond_the_queue_is_shed_with_backoff_hints() {
        // First request is large and unbudgeted: the worker is busy for
        // many milliseconds while the reader (all in-memory) admits one
        // more and must shed the rest of the burst.
        let mut input = request_line(0, None, 4000);
        for i in 1..=6 {
            input.push('\n');
            input.push_str(&request_line(i, None, 4));
        }
        input.push('\n');
        let opts = ServeOpts { queue: 1, ..ServeOpts::default() };
        let (counters, responses) = run(&input, &opts);
        assert_eq!(counters.received, 7);
        assert!(counters.shed > 0, "burst was not shed: {counters:?}");
        assert_eq!(counters.solved + counters.shed, 7);
        assert_eq!(counters.deadline_misses, 0);
        let overloaded: Vec<_> =
            responses.iter().filter(|r| r["status"] == "overloaded").collect();
        assert_eq!(overloaded.len() as u64, counters.shed);
        for r in &overloaded {
            assert!(r["retry_after_ms"].as_u64().unwrap() >= 1);
        }
        // Every line got exactly one response.
        assert_eq!(responses.len(), 7);
    }

    #[test]
    fn tight_deadlines_degrade_but_never_fail() {
        let input = format!("{}\n", request_line(9, Some(1), 3000));
        let (counters, responses) = run(&input, &ServeOpts::default());
        assert_eq!(counters.solved, 1);
        assert_eq!(counters.solve_errors, 0);
        assert_eq!(responses[0]["status"], "ok");
        // 1 ms cannot fit the full ladder on 3000 threads: degraded.
        assert_eq!(responses[0]["degraded"].as_bool(), Some(true), "{:?}", responses[0]);
    }

    #[test]
    fn deadline_that_lapses_in_queue_is_answered_without_a_solve() {
        // Large unbudgeted head request occupies the worker; the second
        // request's 1 ms deadline lapses while it waits.
        let input = format!(
            "{}\n{}\n",
            request_line(0, None, 4000),
            request_line(1, Some(1), 4)
        );
        let (counters, responses) = run(&input, &ServeOpts::default());
        assert_eq!(counters.expired_in_queue, 1, "{counters:?}");
        let expired = responses.iter().find(|r| r["id"].as_u64() == Some(1)).unwrap();
        assert_eq!(expired["status"], "error");
        assert_eq!(expired["class"], "deadline");
    }

    #[test]
    fn malformed_lines_get_parse_errors_and_serving_continues() {
        let input = format!("this is not json\n{}\n", request_line(5, None, 4));
        let (counters, responses) = run(&input, &ServeOpts::default());
        assert_eq!(counters.parse_errors, 1);
        assert_eq!(counters.solved, 1);
        let parse = responses.iter().find(|r| r["status"] == "error").unwrap();
        assert_eq!(parse["class"], "parse");
        assert_eq!(parse["id"], serde_json::Value::Null);
        assert!(responses
            .iter()
            .any(|r| r["status"] == "ok" && r["id"].as_u64() == Some(5)));
    }

    #[test]
    fn invalid_problems_are_typed_not_fatal() {
        let bad = r#"{"id":3,"problem":{"servers":0,"capacity":10.0,"threads":[]}}"#;
        let input = format!("{bad}\n{}\n", request_line(4, None, 4));
        let (counters, responses) = run(&input, &ServeOpts::default());
        assert_eq!(counters.solve_errors, 1);
        assert_eq!(counters.solved, 1);
        let err = responses.iter().find(|r| r["id"].as_u64() == Some(3)).unwrap();
        assert_eq!(err["status"], "error");
        assert_eq!(err["class"], "problem");
    }

    #[test]
    fn counters_serialize_for_the_shutdown_dump() {
        let input = format!("{}\n", request_line(1, None, 4));
        let (counters, _) = run(&input, &ServeOpts::default());
        let json = serde_json::to_string_pretty(&counters).unwrap();
        let back: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(back["solved"].as_u64(), Some(1));
        assert!(back["per_tier"].as_object().is_some());
    }

    #[test]
    fn empty_input_returns_zeroed_counters() {
        let (counters, responses) = run("", &ServeOpts::default());
        assert_eq!(counters, ServeCounters::default());
        assert!(responses.is_empty());
    }
}
