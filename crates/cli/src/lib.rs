#![warn(missing_docs)]

//! # aa-cli — file-driven solving
//!
//! The `aa-solve` binary turns the library into a tool: problems are
//! JSON documents (servers, capacity, one [`UtilitySpec`] per thread),
//! solutions come back as JSON assignments with per-thread utilities and
//! summary statistics. A `generate` mode emits random paper-style
//! problems for experimentation.
//!
//! ```text
//! aa-solve solve   problem.json [--solver algo2] [--pretty]
//! aa-solve generate --servers 8 --beta 5 --capacity 1000 \
//!                   --dist powerlaw --alpha 2 [--seed S]
//! aa-solve serve   [--queue N] [--deadline-ms D]  # LDJSON request loop
//! aa-solve solvers                      # list available solvers
//! ```
//!
//! This module holds all logic (file formats, solver registry, driver
//! functions) so it is unit-testable; `main.rs` is a thin argv wrapper.
//! The deadline-aware request loop lives in [`serve`].

pub mod fleet;
pub mod proto;
pub mod serve;
pub mod worker;

use aa_core::churn::ClusterEvent;
use aa_core::solver::{
    batch_seed, Algo1, Algo2, Algo2FairShare, Algo2Refined, Algo2SingleSort, BranchAndBound,
    BruteForce, PriceSolver, Rr, Ru, SolveError, Solver, Ur, Uu,
};
use aa_core::{algo2, superopt, Problem, TieredSolver, ALPHA};
use aa_sim::controller::RepairPolicy;
use aa_sim::faults::{
    generate_script, run_script, ChurnReport, FaultScript, FaultScriptConfig, ScriptedEvent,
};
use aa_utility::{SpecError, UtilitySpec};
use aa_workloads::{Distribution, InstanceSpec};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use serde::{Deserialize, Serialize};

/// A problem document: what `aa-solve solve` reads.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProblemFile {
    /// Number of servers `m`.
    pub servers: usize,
    /// Per-server capacity `C`.
    pub capacity: f64,
    /// One utility description per thread.
    pub threads: Vec<UtilitySpec>,
}

/// A solution document: what `aa-solve solve` writes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SolutionFile {
    /// Solver that produced this solution.
    pub solver: String,
    /// Server index per thread.
    pub server: Vec<usize>,
    /// Allocation per thread.
    pub allocation: Vec<f64>,
    /// Utility per thread at its allocation.
    pub utility: Vec<f64>,
    /// Total utility.
    pub total_utility: f64,
    /// The super-optimal upper bound `F̂`.
    pub upper_bound: f64,
    /// `total_utility / upper_bound` (≥ α for the approximation
    /// algorithms).
    pub bound_ratio: f64,
}

/// Everything that can go wrong driving a solve from a file.
#[derive(Debug)]
pub enum CliError {
    /// JSON syntax or schema problems.
    Parse(serde_json::Error),
    /// A thread's utility spec failed validation.
    Spec {
        /// Index of the offending thread in the file.
        thread: usize,
        /// What was wrong with it.
        source: SpecError,
    },
    /// Problem-level validation failed.
    Problem(aa_core::ProblemError),
    /// Unknown solver name.
    UnknownSolver(String),
    /// I/O failure.
    Io(std::io::Error),
    /// A churn run failed (unrepairable event or invalid intermediate
    /// assignment).
    Churn(String),
    /// The solve itself failed (oversized instance, non-finite utility
    /// curve, infeasible output, budget expiry, cancellation).
    Solve(SolveError),
    /// `--metrics-addr` could not be bound. Distinct from [`CliError::Io`]
    /// so orchestrators can tell "the observability endpoint is taken"
    /// (retry on another port) from a failed data read.
    MetricsBind(std::io::Error),
    /// A fleet worker process could not be spawned at startup
    /// (`--fleet`). Distinct from [`CliError::Io`] so orchestrators can
    /// tell "the binary cannot re-exec itself" (bad PATH, exec
    /// permissions, fork limits) from a failed data read.
    WorkerSpawn(std::io::Error),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Parse(e) => write!(f, "could not parse input file: {e}"),
            CliError::Spec { thread, source } => {
                write!(f, "thread {thread}: invalid utility: {source}")
            }
            CliError::Problem(e) => write!(f, "invalid problem: {e}"),
            CliError::UnknownSolver(name) => {
                write!(f, "unknown solver {name:?}; run `aa-solve solvers` for the list")
            }
            CliError::Io(e) => write!(f, "i/o error: {e}"),
            CliError::Churn(msg) => write!(f, "churn run failed: {msg}"),
            CliError::Solve(e) => write!(f, "solve failed: {e}"),
            CliError::MetricsBind(e) => write!(f, "could not bind metrics endpoint: {e}"),
            CliError::WorkerSpawn(e) => write!(f, "could not spawn fleet worker: {e}"),
        }
    }
}

impl std::error::Error for CliError {}

impl CliError {
    /// The process exit code for this error class, as documented in the
    /// binary's usage text. Stable: scripts may dispatch on these.
    ///
    /// | code | class |
    /// |---|---|
    /// | 2 | malformed input (JSON, utility spec, problem validation) |
    /// | 3 | unknown solver name |
    /// | 4 | solve failed (too large, non-finite curve, infeasible) |
    /// | 5 | deadline exceeded or cancelled |
    /// | 6 | i/o failure |
    /// | 7 | churn run failed |
    /// | 8 | metrics endpoint bind failed (`--metrics-addr` taken/invalid) |
    /// | 9 | fleet worker spawn failed at startup (`--fleet`) |
    ///
    /// (0 is success; 1 is reserved for usage errors in the binary.)
    pub fn exit_code(&self) -> u8 {
        match self {
            CliError::Parse(_) | CliError::Spec { .. } | CliError::Problem(_) => 2,
            CliError::UnknownSolver(_) => 3,
            CliError::Solve(SolveError::DeadlineExceeded | SolveError::Cancelled) => 5,
            CliError::Solve(_) => 4,
            CliError::Io(_) => 6,
            CliError::Churn(_) => 7,
            CliError::MetricsBind(_) => 8,
            CliError::WorkerSpawn(_) => 9,
        }
    }
}

impl From<SolveError> for CliError {
    fn from(e: SolveError) -> Self {
        CliError::Solve(e)
    }
}

impl From<serde_json::Error> for CliError {
    fn from(e: serde_json::Error) -> Self {
        CliError::Parse(e)
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

/// The solver registry: stable names → instances. Boxed `Send + Sync`
/// so the instance can drive the parallel batch/churn entry points.
pub fn solver_by_name(name: &str) -> Result<Box<dyn Solver + Send + Sync>, CliError> {
    Ok(match name {
        "algo1" => Box::new(Algo1),
        "algo2" => Box::new(Algo2),
        "algo2-refined" => Box::new(Algo2Refined),
        "price" => Box::new(PriceSolver),
        "algo2-single-sort" => Box::new(Algo2SingleSort),
        "algo2-fair-share" => Box::new(Algo2FairShare),
        "uu" => Box::new(Uu),
        "ur" => Box::new(Ur),
        "ru" => Box::new(Ru),
        "rr" => Box::new(Rr),
        "exact" => Box::new(BruteForce),
        "exact-bb" => Box::new(BranchAndBound),
        "tiered" => Box::new(TieredSolver::new()),
        other => return Err(CliError::UnknownSolver(other.to_string())),
    })
}

/// Names accepted by [`solver_by_name`], in help order.
pub const SOLVER_NAMES: &[&str] = &[
    "algo2",
    "algo2-refined",
    "price",
    "algo1",
    "uu",
    "ur",
    "ru",
    "rr",
    "exact",
    "exact-bb",
    "tiered",
    "algo2-single-sort",
    "algo2-fair-share",
];

/// Build the live [`Problem`] from a parsed file.
pub fn build_problem(file: &ProblemFile) -> Result<Problem, CliError> {
    let mut threads = Vec::with_capacity(file.threads.len());
    for (i, spec) in file.threads.iter().enumerate() {
        threads.push(
            spec.build()
                .map_err(|source| CliError::Spec { thread: i, source })?,
        );
    }
    Problem::new(file.servers, file.capacity, threads).map_err(CliError::Problem)
}

/// Parse, solve, and package a solution document.
pub fn solve_document(json: &str, solver_name: &str, seed: u64) -> Result<SolutionFile, CliError> {
    let file: ProblemFile = serde_json::from_str(json)?;
    let problem = build_problem(&file)?;
    let solver = solver_by_name(solver_name)?;
    let mut rng = StdRng::seed_from_u64(seed);
    // The panic-free path: hostile input (oversized exact instances,
    // non-finite curves) comes back as a typed error and its own exit
    // code instead of an abort.
    let assignment = solver.try_solve_with(&problem, &mut rng)?;

    let utility: Vec<f64> = (0..problem.len())
        .map(|i| problem.utility_of(i, assignment.amount[i]))
        .collect();
    let total: f64 = utility.iter().sum();
    let bound = superopt::super_optimal(&problem).utility;
    Ok(SolutionFile {
        solver: solver.name().to_string(),
        server: assignment.server,
        allocation: assignment.amount,
        utility,
        total_utility: total,
        upper_bound: bound,
        bound_ratio: if bound > 0.0 { total / bound } else { 1.0 },
    })
}

/// Options for `aa-solve generate`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GenerateOpts {
    /// Servers `m`.
    pub servers: usize,
    /// Threads per server `β`.
    pub beta: usize,
    /// Capacity `C`.
    pub capacity: f64,
    /// Workload distribution.
    pub dist: Distribution,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GenerateOpts {
    fn default() -> Self {
        GenerateOpts {
            servers: 8,
            beta: 5,
            capacity: 1000.0,
            dist: Distribution::Uniform,
            seed: 2016,
        }
    }
}

/// Generate a random paper-style problem document.
///
/// The generated utilities are emitted as PCHIP control-point specs, so
/// the file round-trips through [`solve_document`] to *exactly* the same
/// functions the in-process generator would build.
pub fn generate_document(opts: &GenerateOpts) -> ProblemFile {
    let spec = InstanceSpec {
        servers: opts.servers,
        beta: opts.beta,
        capacity: opts.capacity,
        dist: opts.dist,
    };
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let threads = aa_workloads::genutil::generate_many(
        &spec.dist,
        spec.capacity,
        spec.servers * spec.beta,
        &mut rng,
    )
    .into_iter()
    .map(|g| UtilitySpec::Pchip {
        points: vec![
            (0.0, 0.0),
            (opts.capacity / 2.0, g.v),
            (opts.capacity, g.v + g.w),
        ],
    })
    .collect();
    ProblemFile {
        servers: opts.servers,
        capacity: opts.capacity,
        threads,
    }
}

/// Sanity constant re-exported for the binary's summary line.
pub const GUARANTEE: f64 = ALPHA;

// ---- churn: fault scripts from files or seeds ----

/// One scheduled cluster event, as written in a script file. Arrival
/// utilities are [`UtilitySpec`]s so scripts are self-contained JSON.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum EventSpec {
    /// Server `server` fails at `epoch`.
    ServerDown {
        /// Epoch the event fires.
        epoch: usize,
        /// Failing server (index valid at that point of the script).
        server: usize,
    },
    /// One server rejoins at `epoch`.
    ServerUp {
        /// Epoch the event fires.
        epoch: usize,
    },
    /// Cluster-wide capacity becomes `capacity` at `epoch`.
    CapacityChanged {
        /// Epoch the event fires.
        epoch: usize,
        /// The new per-server capacity.
        capacity: f64,
    },
    /// A thread with the given utility arrives at `epoch`.
    ThreadArrived {
        /// Epoch the event fires.
        epoch: usize,
        /// The arriving thread's utility curve.
        utility: UtilitySpec,
    },
    /// Thread `thread` departs at `epoch`.
    ThreadDeparted {
        /// Epoch the event fires.
        epoch: usize,
        /// Departing thread (index valid at that point of the script).
        thread: usize,
    },
}

/// A fault script document: what `aa-solve churn --script` reads.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScriptFile {
    /// Epochs the run spans (extended if an event is scheduled later).
    pub epochs: usize,
    /// The scheduled events, applied per epoch in listed order.
    pub events: Vec<EventSpec>,
}

/// Build a runnable [`FaultScript`] from a parsed script file.
pub fn build_script(file: &ScriptFile) -> Result<FaultScript, CliError> {
    let mut events = Vec::with_capacity(file.events.len());
    let mut epochs = file.epochs.max(1);
    for (i, spec) in file.events.iter().enumerate() {
        let (epoch, event) = match spec {
            EventSpec::ServerDown { epoch, server } => {
                (*epoch, ClusterEvent::ServerDown { server: *server })
            }
            EventSpec::ServerUp { epoch } => (*epoch, ClusterEvent::ServerUp),
            EventSpec::CapacityChanged { epoch, capacity } => {
                (*epoch, ClusterEvent::CapacityChanged { capacity: *capacity })
            }
            EventSpec::ThreadArrived { epoch, utility } => {
                let built = utility
                    .build()
                    .map_err(|source| CliError::Spec { thread: i, source })?;
                (*epoch, ClusterEvent::ThreadArrived { utility: built })
            }
            EventSpec::ThreadDeparted { epoch, thread } => {
                (*epoch, ClusterEvent::ThreadDeparted { thread: *thread })
            }
        };
        epochs = epochs.max(epoch + 1);
        events.push(ScriptedEvent { epoch, event });
    }
    Ok(FaultScript { events, epochs })
}

/// Options for `aa-solve churn`.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnOpts {
    /// Repair policy driven through the script.
    pub policy: RepairPolicy,
    /// Solver used for the initial plan and the retention reference.
    pub solver: String,
    /// Seed for script generation (ignored when a script file is given).
    pub seed: u64,
    /// Generator configuration (ignored when a script file is given).
    pub config: FaultScriptConfig,
}

impl Default for ChurnOpts {
    fn default() -> Self {
        ChurnOpts {
            policy: RepairPolicy::Migrations(2),
            solver: "algo2".to_string(),
            seed: 2016,
            config: FaultScriptConfig::default(),
        }
    }
}

/// Parse a problem document, run a churn script against it, and return
/// the retention report. `script_json` overrides seeded generation.
pub fn churn_document(
    problem_json: &str,
    script_json: Option<&str>,
    opts: &ChurnOpts,
) -> Result<ChurnReport, CliError> {
    let file: ProblemFile = serde_json::from_str(problem_json)?;
    let problem = build_problem(&file)?;
    let script = match script_json {
        Some(json) => {
            let file: ScriptFile = serde_json::from_str(json)?;
            build_script(&file)?
        }
        None => generate_script(&problem, &opts.config, opts.seed),
    };
    let solver = solver_by_name(&opts.solver)?;
    run_script(&problem, &script, opts.policy, solver.as_ref())
        .map_err(|e| CliError::Churn(e.to_string()))
}

// ---- bench: the reproducible solver benchmark matrix ----

/// Schema version of [`BenchReport`]; bump on breaking JSON changes.
/// Version 2 added the always-present `incremental` drift entries.
/// Version 3 added the per-stage time breakdowns (`superopt_micros`,
/// `linearize_micros`, `assign_micros`) measured through the `aa-obs`
/// span pipeline.
/// Version 4 added the batched-kernel instrumentation: per-entry
/// `kernel_sweep_micros`/`dispatch_sweep_micros` (one struct-of-arrays
/// demand sweep vs one per-element virtual-dispatch sweep) and the
/// `discrete_path` entries timing the all-discrete integer ladder
/// against the generic bisection on constructed staircase instances.
/// Version 5 added the `scale` entries (`--mode scale`): the
/// price-discovery backend vs Algorithm 2 on the paper matrix plus
/// `n ∈ {10⁵, 10⁶}` instances — wall clock, iteration counts, utility
/// gaps vs the superopt bound and vs Algo2, per-iteration sweep
/// seq/par timing, and warm-vs-cold drifted re-solve timing.
pub const BENCH_VERSION: u32 = 5;

/// Which benchmark suites `aa-solve bench` runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BenchMode {
    /// The seq-vs-par solver matrix only (the original suite).
    Matrix,
    /// The cold-vs-warm incremental drift workload only.
    Incremental,
    /// The price-backend scale suite only (paper matrix + 10⁵/10⁶).
    Scale,
    /// The matrix and incremental suites in one report (`scale` stays
    /// opt-in: its 10⁶ cell is too heavy for the default run).
    Full,
}

/// Options for `aa-solve bench`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BenchOpts {
    /// Run only the small matrix entries (CI smoke mode).
    pub small: bool,
    /// Base seed; every entry derives its own instance seed from it.
    pub seed: u64,
    /// Timed repetitions per entry; the minimum wall time is reported.
    pub reps: usize,
    /// Which suites to run.
    pub mode: BenchMode,
    /// Upper bound on the scale suite's instance sizes (threads). CI
    /// smoke passes `--max-threads 100000` to skip the 10⁶ cell.
    pub max_threads: usize,
}

impl Default for BenchOpts {
    fn default() -> Self {
        BenchOpts {
            small: false,
            seed: 2016,
            reps: 3,
            mode: BenchMode::Full,
            max_threads: usize::MAX,
        }
    }
}

/// One cell of the benchmark matrix: a seeded instance of one workload
/// distribution at one size, solved sequentially and in parallel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchEntry {
    /// Workload distribution name (`uniform`/`normal`/`powerlaw`/`discrete`).
    pub dist: String,
    /// Size label: `small` or `large`.
    pub size: String,
    /// Servers `m`.
    pub servers: usize,
    /// Threads `n`.
    pub threads: usize,
    /// Instance seed (derived from the base seed and the entry index).
    pub seed: u64,
    /// Minimum wall time of the sequential solve, milliseconds.
    pub seq_millis: f64,
    /// Minimum wall time of the parallel solve, milliseconds.
    pub par_millis: f64,
    /// `seq_millis / par_millis`.
    pub speedup: f64,
    /// Total utility of the sequential solve.
    pub seq_utility: f64,
    /// Total utility of the parallel solve — must equal `seq_utility`.
    pub par_utility: f64,
    /// Whether the sequential and parallel assignments are exactly equal
    /// (the determinism contract says this is always `true`).
    pub identical: bool,
    /// The super-optimal upper bound `F̂`.
    pub so_bound: f64,
    /// `seq_utility / so_bound` (≥ α by Theorem VI.1).
    pub ratio_vs_so: f64,
    /// Wall time inside the super-optimal bound stage, microseconds
    /// (from an untimed instrumented solve; see [`BENCH_VERSION`]).
    pub superopt_micros: u64,
    /// Wall time inside the linearization stage, microseconds.
    pub linearize_micros: u64,
    /// Wall time inside the assignment stage, microseconds.
    pub assign_micros: u64,
    /// Minimum wall time of one batched struct-of-arrays demand sweep
    /// over this instance's capped views, microseconds (schema v4).
    pub kernel_sweep_micros: f64,
    /// Minimum wall time of the same sweep through per-element virtual
    /// `inverse_derivative` dispatch, microseconds.
    pub dispatch_sweep_micros: f64,
}

/// One all-discrete fast-path measurement (schema v4): a constructed
/// staircase instance solved through the default entry point (integer
/// ladder engaged) and through the generic-bisection reference arm.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiscretePathEntry {
    /// Entry label (`staircase-small`/`staircase-large`).
    pub name: String,
    /// Threads `n` in the constructed instance.
    pub threads: usize,
    /// Minimum wall time of the ladder-enabled allocation, microseconds.
    pub ladder_micros: f64,
    /// Minimum wall time of the generic reference arm, microseconds.
    pub generic_micros: f64,
    /// Whether the integer ladder actually engaged on this instance
    /// (it must: the instance is constructed all-staircase).
    pub ladder_engaged: bool,
    /// Whether both arms produced bit-identical allocations (the
    /// ladder's correctness contract; always `true`).
    pub identical: bool,
}

/// One cold-vs-warm drift run: a seeded instance mutated by a small
/// churn fraction each epoch, solved cold (`algo2::solve` from scratch)
/// and warm (`algo2::solve_incremental` with a persistent
/// [`aa_core::WarmState`]) side by side at every epoch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IncrementalEntry {
    /// Workload distribution name.
    pub dist: String,
    /// Size label: `drift-small` or `drift-large`.
    pub size: String,
    /// Servers `m`.
    pub servers: usize,
    /// Threads `n`.
    pub threads: usize,
    /// Epochs driven.
    pub epochs: usize,
    /// Threads mutated per epoch (~1% of `n`, at least 1).
    pub churn_per_epoch: usize,
    /// Instance seed (derived from the base seed and the entry index).
    pub seed: u64,
    /// Median per-epoch wall time of the cold solve, milliseconds.
    pub cold_median_millis: f64,
    /// Median per-epoch wall time of the warm solve, milliseconds.
    pub warm_median_millis: f64,
    /// `cold_median_millis / warm_median_millis`.
    pub speedup: f64,
    /// Mean bisection demand-map evaluations per epoch, cold path.
    pub cold_demand_maps_mean: f64,
    /// Mean bisection demand-map evaluations per epoch, warm path.
    pub warm_demand_maps_mean: f64,
    /// Epochs (after the first) the engine solved on the warm path
    /// rather than a structural rebuild.
    pub warm_epochs: usize,
    /// Whether warm and cold assignments were exactly equal at *every*
    /// epoch (the incremental engine's bit-identity contract).
    pub identical: bool,
}

/// One scale-suite cell (schema v5): the price-discovery backend and
/// Algorithm 2 solving the same seeded instance, with the price
/// backend's convergence and warm-restart behaviour instrumented.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScaleEntry {
    /// Workload distribution name.
    pub dist: String,
    /// Size label: `paper-large`, `100k`, or `1m`.
    pub size: String,
    /// Servers `m`.
    pub servers: usize,
    /// Threads `n`.
    pub threads: usize,
    /// Instance seed (derived from the base seed and the entry index).
    pub seed: u64,
    /// Minimum wall time of `algo2::solve`, milliseconds.
    pub algo2_millis: f64,
    /// Minimum wall time of the cold price solve, milliseconds.
    pub price_millis: f64,
    /// `algo2_millis / price_millis` (> 1 where price wins).
    pub speedup_vs_algo2: f64,
    /// Total utility of the Algo2 assignment.
    pub algo2_utility: f64,
    /// Total utility of the price assignment.
    pub price_utility: f64,
    /// The super-optimal upper bound `F̂`.
    pub superopt_bound: f64,
    /// `(superopt_bound − price_utility) / superopt_bound`.
    pub gap_vs_bound: f64,
    /// `(algo2_utility − price_utility) / algo2_utility` (negative when
    /// price beats Algo2).
    pub gap_vs_algo2: f64,
    /// Global price-discovery iterations of the cold solve.
    pub iterations: u64,
    /// Per-server refinement iterations (summed) of the cold solve.
    pub refine_iterations: u64,
    /// Total demand sweeps of the cold solve.
    pub sweeps: u64,
    /// Whether the global market cleared within tolerance under the
    /// iteration cap.
    pub converged: bool,
    /// Minimum wall time of one sequential full-width demand sweep,
    /// microseconds.
    pub sweep_seq_micros: f64,
    /// Minimum wall time of the same sweep through the pool, microseconds.
    pub sweep_par_micros: f64,
    /// `sweep_seq_micros / sweep_par_micros` — the per-iteration
    /// speedup the backend's scaling rests on. Expect ≥ 2× only at
    /// `pool_threads ≥ 4`.
    pub sweep_speedup: f64,
    /// Wall time of a cold price solve on the ~1%-drifted instance,
    /// milliseconds.
    pub cold_millis: f64,
    /// Wall time of a warm price solve (carried [`aa_core::PriceWarmState`])
    /// on the same drifted instance, milliseconds.
    pub warm_millis: f64,
    /// `cold_millis / warm_millis`.
    pub warm_speedup: f64,
    /// Global iterations of the warm drifted re-solve (expect far fewer
    /// than `iterations`).
    pub warm_iterations: u64,
    /// Whether the price solve is bit-identical run at 1 pool thread and
    /// at the ambient pool width (the determinism contract).
    pub identical: bool,
}

/// The benchmark document written to `BENCH_solver.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchReport {
    /// Schema version ([`BENCH_VERSION`]).
    pub version: u32,
    /// Solver benchmarked (`algo2` — the paper's headline algorithm).
    pub solver: String,
    /// Effective pool thread count the parallel entries ran with.
    pub pool_threads: usize,
    /// Hardware threads the host reports (`available_parallelism`).
    /// Speedup expectations only apply when this is ≥ 4.
    pub hardware_threads: usize,
    /// Base seed of the matrix.
    pub seed: u64,
    /// One entry per (distribution × size) cell; empty in
    /// [`BenchMode::Incremental`] runs.
    pub entries: Vec<BenchEntry>,
    /// One entry per drift run; empty in [`BenchMode::Matrix`] runs.
    pub incremental: Vec<IncrementalEntry>,
    /// All-discrete ladder measurements, one per matrix size; empty in
    /// [`BenchMode::Incremental`] runs (schema v4).
    pub discrete_path: Vec<DiscretePathEntry>,
    /// Price-backend scale suite; populated only in [`BenchMode::Scale`]
    /// runs (schema v5).
    #[serde(default)]
    pub scale: Vec<ScaleEntry>,
}

/// The four paper workload distributions, in reporting order.
fn bench_distributions() -> Vec<(&'static str, Distribution)> {
    vec![
        ("uniform", Distribution::Uniform),
        ("normal", Distribution::paper_normal()),
        ("powerlaw", Distribution::PowerLaw { alpha: 2.0 }),
        ("discrete", Distribution::Discrete { gamma: 0.85, theta: 5.0 }),
    ]
}

/// Matrix sizes: the small cell stays under the allocator's parallel
/// threshold (it measures overhead, not speedup); the large cell's
/// `n = 8192` clears [`aa_allocator::par_threshold`] so the
/// pool path genuinely runs.
fn bench_sizes(small_only: bool) -> Vec<(&'static str, usize, usize)> {
    if small_only {
        vec![("small", 8, 8)]
    } else {
        vec![("small", 8, 8), ("large", 16, 512)]
    }
}

/// Per-stage wall-time breakdown of one `algo2::solve`, measured through
/// the aa-obs span pipeline: install (or reuse) the process collector,
/// open a uniquely-identified probe span, run one *untimed* solve under
/// it, and sum the recorded `superopt`/`linearize`/`assign` spans that
/// chain back to this probe. Filtering by parent id (rather than
/// clearing the buffer) keeps the probe correct when other recording —
/// `--trace`, concurrent tests — shares the collector. Returns
/// `(superopt, linearize, assign)` in microseconds; all zeros if the
/// probe's events were lost (buffer full, or recording raced off).
fn stage_breakdown(problem: &Problem) -> (u64, u64, u64) {
    let collector = aa_obs::Collector::install();
    let was_enabled = collector.is_enabled();
    collector.set_enabled(true);
    let probe = aa_obs::trace::SpanGuard::enter("bench_probe");
    let probe_id = probe.id();
    let _ = algo2::solve(problem);
    drop(probe);
    collector.set_enabled(was_enabled);
    let Some(probe_id) = probe_id else { return (0, 0, 0) };
    let events = collector.events();
    let Some(algo2_id) = events
        .iter()
        .find(|e| e.name == "algo2" && e.parent_id == probe_id)
        .map(|e| e.id)
    else {
        return (0, 0, 0);
    };
    let mut sums = (0_u64, 0_u64, 0_u64);
    for e in &events {
        if e.parent_id != algo2_id {
            continue;
        }
        match e.name {
            "superopt" => sums.0 += e.duration_micros,
            "linearize" => sums.1 += e.duration_micros,
            "assign" => sums.2 += e.duration_micros,
            _ => {}
        }
    }
    sums
}

/// Time one whole-slice demand sweep two ways — through the batched
/// struct-of-arrays kernel and through per-element virtual
/// `inverse_derivative` dispatch — over a spread of probe prices.
/// Returns the minimum per-sweep wall time of each path in microseconds.
/// The two paths are bit-identical by contract (the allocator's
/// differential tests enforce it); this only measures the gap the
/// kernel closes.
fn kernel_vs_dispatch(problem: &Problem, reps: usize) -> (f64, f64) {
    use aa_utility::{DemandTable, Utility};
    let utils = problem.capped_threads();
    let mut table = DemandTable::new();
    table.compile(&utils);
    let lambdas: [f64; 6] = [1e-3, 1e-2, 0.1, 1.0, 10.0, 100.0];
    let mut out = vec![0.0; utils.len()];
    let mut best_kernel = f64::INFINITY;
    let mut best_dispatch = f64::INFINITY;
    let mut sink = 0.0_f64;
    for _ in 0..reps.max(1) {
        let t0 = std::time::Instant::now();
        for &l in &lambdas {
            table.batch_inverse_derivative(&utils, l, &mut out);
            sink += out[0];
        }
        best_kernel = best_kernel.min(t0.elapsed().as_secs_f64() * 1e6 / lambdas.len() as f64);
        let t1 = std::time::Instant::now();
        for &l in &lambdas {
            for (slot, u) in out.iter_mut().zip(&utils) {
                *slot = u.inverse_derivative(l);
            }
            sink += out[0];
        }
        best_dispatch =
            best_dispatch.min(t1.elapsed().as_secs_f64() * 1e6 / lambdas.len() as f64);
    }
    std::hint::black_box(sink);
    (best_kernel, best_dispatch)
}

/// Measure the all-discrete integer ladder against the generic
/// bisection on a constructed staircase instance of `n` capped-linear
/// threads (random slopes and knees from `entry_seed`), at a budget
/// chosen below the total knee mass so the marginal price sits on the
/// ladder and the fast path provably engages.
fn discrete_path_entry(name: &str, n: usize, reps: usize, entry_seed: u64) -> DiscretePathEntry {
    use aa_allocator::bisection::{allocate, allocate_generic, discrete_ladder_bracket};
    use rand::Rng;

    let mut rng = StdRng::seed_from_u64(entry_seed);
    let utils: Vec<aa_utility::CappedLinear> = (0..n)
        .map(|_| {
            let slope = rng.gen_range(0.1..10.0);
            let knee = rng.gen_range(1.0..50.0);
            aa_utility::CappedLinear::new(slope, knee, knee + rng.gen_range(0.0..10.0))
        })
        .collect();
    let total_knee: f64 = utils.iter().map(|u| u.knee()).sum();
    let budget = 0.4 * total_knee;

    let ladder_engaged = discrete_ladder_bracket(&utils, budget).is_some();
    let mut ladder_micros = f64::INFINITY;
    let mut generic_micros = f64::INFINITY;
    let mut fast = None;
    let mut generic = None;
    for _ in 0..reps.max(1) {
        let t0 = std::time::Instant::now();
        fast = Some(allocate(&utils, budget));
        ladder_micros = ladder_micros.min(t0.elapsed().as_secs_f64() * 1e6);
        let t1 = std::time::Instant::now();
        generic = Some(allocate_generic(&utils, budget));
        generic_micros = generic_micros.min(t1.elapsed().as_secs_f64() * 1e6);
    }
    let (fast, generic) = (fast.expect("reps ≥ 1"), generic.expect("reps ≥ 1"));
    let identical = fast.amounts.len() == generic.amounts.len()
        && fast
            .amounts
            .iter()
            .zip(&generic.amounts)
            .all(|(a, b)| a.to_bits() == b.to_bits())
        && fast.utility.to_bits() == generic.utility.to_bits();

    DiscretePathEntry {
        name: name.to_string(),
        threads: n,
        ladder_micros,
        generic_micros,
        ladder_engaged,
        identical,
    }
}

fn time_best<F: FnMut() -> aa_core::Assignment>(reps: usize, mut f: F) -> (f64, aa_core::Assignment) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps.max(1) {
        let t0 = std::time::Instant::now();
        let a = f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
        out = Some(a);
    }
    (best, out.expect("reps ≥ 1"))
}

/// Median by nearest rank (lower middle for even counts); 0 when empty.
fn median_ms(samples: &mut [f64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_unstable_by(f64::total_cmp);
    samples[(samples.len() - 1) / 2]
}

/// Drift sizes: the acceptance workload (64 servers × 512 threads,
/// 100 epochs) plus a CI-sized small run.
fn drift_sizes(small_only: bool) -> Vec<(&'static str, usize, usize, usize)> {
    if small_only {
        vec![("drift-small", 8, 8, 30)]
    } else {
        vec![("drift-small", 8, 8, 30), ("drift-large", 64, 8, 100)]
    }
}

/// Run one seeded drift workload: every epoch mutates ~1% of the
/// threads (fresh utility curves from the same distribution) and solves
/// the instance twice — cold from scratch and warm through a persistent
/// [`aa_core::WarmState`] — recording per-epoch wall times, bisection
/// demand-map counts, and exact output equality.
///
/// An untimed fresh-state solve runs first each epoch: it supplies the
/// cold path's demand-map count (the bisection work `algo2::solve` does
/// without reporting) and touches every buffer, so both timed solves
/// run on warm memory.
fn drift_entry(
    dist_name: &str,
    dist: &Distribution,
    size: &str,
    servers: usize,
    beta: usize,
    epochs: usize,
    entry_seed: u64,
) -> Result<IncrementalEntry, CliError> {
    use aa_core::{SolveMode, WarmState};

    let capacity = 1000.0;
    let mut rng = StdRng::seed_from_u64(entry_seed);
    let n = servers * beta;
    let mut threads: Vec<aa_utility::DynUtility> =
        aa_workloads::genutil::generate_many(dist, capacity, n, &mut rng)
            .into_iter()
            .map(|g| g.utility)
            .collect();
    let churn = (n / 100).max(1);

    let mut warm = WarmState::new();
    let mut cold_ms = Vec::with_capacity(epochs);
    let mut warm_ms = Vec::with_capacity(epochs);
    let mut cold_maps = 0_u64;
    let mut warm_maps = 0_u64;
    let mut warm_epochs = 0_usize;
    let mut identical = true;

    for epoch in 0..epochs {
        if epoch > 0 {
            for g in aa_workloads::genutil::generate_many(dist, capacity, churn, &mut rng) {
                let at = (rng.next_u64() % n as u64) as usize;
                threads[at] = g.utility;
            }
        }
        // Unchanged threads keep their `Arc` identity, which is what the
        // incremental engine's delta detection keys on.
        let problem =
            Problem::new(servers, capacity, threads.clone()).map_err(CliError::Problem)?;

        let mut fresh = WarmState::new();
        algo2::solve_incremental(&problem, &mut fresh);
        cold_maps += u64::from(fresh.last_stats().warm.demand_maps);

        let t0 = std::time::Instant::now();
        let cold = algo2::solve(&problem);
        cold_ms.push(t0.elapsed().as_secs_f64() * 1e3);

        let t1 = std::time::Instant::now();
        let warm_a = algo2::solve_incremental(&problem, &mut warm);
        warm_ms.push(t1.elapsed().as_secs_f64() * 1e3);

        let stats = warm.last_stats();
        warm_maps += u64::from(stats.warm.demand_maps);
        warm_epochs += usize::from(stats.mode == SolveMode::Warm);
        identical &= cold == warm_a;
    }

    let cold_median_millis = median_ms(&mut cold_ms);
    let warm_median_millis = median_ms(&mut warm_ms);
    Ok(IncrementalEntry {
        dist: dist_name.to_string(),
        size: size.to_string(),
        servers,
        threads: n,
        epochs,
        churn_per_epoch: churn,
        seed: entry_seed,
        cold_median_millis,
        warm_median_millis,
        speedup: cold_median_millis / warm_median_millis.max(1e-9),
        cold_demand_maps_mean: cold_maps as f64 / epochs as f64,
        warm_demand_maps_mean: warm_maps as f64 / epochs as f64,
        warm_epochs,
        identical,
    })
}

/// Scale-suite cells: the four paper distributions at the paper's large
/// matrix size, plus uniform instances at `n = 10⁵` and `n = 10⁶` (16
/// servers; see [`InstanceSpec::scale`]). Cells above `max_threads`
/// are dropped — CI smoke passes `--max-threads 100000`.
fn scale_specs(max_threads: usize) -> Vec<(&'static str, &'static str, InstanceSpec)> {
    let mut specs = Vec::new();
    for (dist_name, dist) in bench_distributions() {
        specs.push((
            dist_name,
            "paper-large",
            InstanceSpec { servers: 16, beta: 512, capacity: 1000.0, dist },
        ));
    }
    specs.push(("uniform", "100k", InstanceSpec::scale(Distribution::Uniform, 100_000)));
    specs.push(("uniform", "1m", InstanceSpec::scale(Distribution::Uniform, 1_000_000)));
    specs.retain(|(_, _, s)| s.threads() <= max_threads);
    specs
}

/// Run one scale-suite cell: Algo2 and the price backend on the same
/// seeded instance, plus the price backend's sweep-level seq/par
/// timing, a ~1% drift warm-vs-cold re-solve, and a 1-thread-vs-pool
/// bit-identity check. Heavy cells (`n ≥ 5·10⁵`) run one rep.
fn scale_entry(
    dist_name: &str,
    size: &str,
    spec: &InstanceSpec,
    reps: usize,
    entry_seed: u64,
) -> Result<ScaleEntry, CliError> {
    use aa_core::price::{self, PriceOpts, PriceWarmState};
    use aa_utility::DemandTable;

    let mut rng = StdRng::seed_from_u64(entry_seed);
    let problem = spec.generate(&mut rng).map_err(CliError::Problem)?;
    let n = problem.len();
    let reps = if n >= 500_000 { 1 } else { reps.max(1) };
    let price_opts = PriceOpts::default();

    let (algo2_millis, a2) = time_best(reps, || algo2::solve_par(&problem));
    let mut price_millis = f64::INFINITY;
    let mut price_a = None;
    let mut stats = aa_core::PriceStats::default();
    for _ in 0..reps {
        let t0 = std::time::Instant::now();
        let (a, s) = price::solve_with_opts(&problem, &price_opts, None, None)
            .expect("unbudgeted price solve cannot fail");
        price_millis = price_millis.min(t0.elapsed().as_secs_f64() * 1e3);
        price_a = Some(a);
        stats = s;
    }
    let price_a = price_a.expect("reps ≥ 1");
    let algo2_utility = a2.total_utility(&problem);
    let price_utility = price_a.total_utility(&problem);
    let superopt_bound = superopt::super_optimal_par(&problem).utility;

    // Per-iteration sweep timing: one full-width demand sweep,
    // sequential vs through the pool, minimum over reps and probe
    // prices. This is the quantity the backend's scaling rests on.
    let utils = problem.capped_threads();
    let mut table = DemandTable::new();
    table.compile(&utils);
    let mut out = vec![0.0; n];
    let lambdas: [f64; 4] = [1e-2, 0.1, 1.0, 10.0];
    let mut sweep_seq_micros = f64::INFINITY;
    let mut sweep_par_micros = f64::INFINITY;
    for _ in 0..reps {
        let t0 = std::time::Instant::now();
        for &l in &lambdas {
            table.batch_inverse_derivative(&utils, l, &mut out);
        }
        sweep_seq_micros =
            sweep_seq_micros.min(t0.elapsed().as_secs_f64() * 1e6 / lambdas.len() as f64);
        let t1 = std::time::Instant::now();
        for &l in &lambdas {
            price::par_sweep(&table, &utils, l, &mut out);
        }
        sweep_par_micros =
            sweep_par_micros.min(t1.elapsed().as_secs_f64() * 1e6 / lambdas.len() as f64);
    }
    std::hint::black_box(out[0]);

    // Warm-vs-cold drifted re-solve: converge a warm state on the
    // original instance, mutate ~1% of the threads, then solve the
    // drifted instance cold and through the carried prices.
    let mut base_state = PriceWarmState::new();
    let _ = price::solve_warm(&problem, &mut base_state)
        .expect("unbudgeted price solve cannot fail");
    let mut threads: Vec<aa_utility::DynUtility> = problem.threads().to_vec();
    let churn = (n / 100).max(1);
    for g in aa_workloads::genutil::generate_many(&spec.dist, spec.capacity, churn, &mut rng) {
        let at = (rng.next_u64() % n as u64) as usize;
        threads[at] = g.utility;
    }
    let drifted =
        Problem::new(spec.servers, spec.capacity, threads).map_err(CliError::Problem)?;
    let mut cold_millis = f64::INFINITY;
    let mut warm_millis = f64::INFINITY;
    let mut warm_iterations = 0_u64;
    for _ in 0..reps {
        let t0 = std::time::Instant::now();
        let _ = price::solve(&drifted);
        cold_millis = cold_millis.min(t0.elapsed().as_secs_f64() * 1e3);
        // Fresh clone per rep so every warm run starts from the same
        // pre-drift prices.
        let mut state = base_state.clone();
        let t1 = std::time::Instant::now();
        let _ = price::solve_warm(&drifted, &mut state)
            .expect("unbudgeted price solve cannot fail");
        warm_millis = warm_millis.min(t1.elapsed().as_secs_f64() * 1e3);
        warm_iterations = state.last_stats().iterations;
    }

    // Determinism: the cold solve at one pool thread must be
    // bit-identical to the ambient-pool solve above.
    let one = rayon::with_threads(1, || price::solve(&problem));
    let identical = one == price_a;

    Ok(ScaleEntry {
        dist: dist_name.to_string(),
        size: size.to_string(),
        servers: spec.servers,
        threads: n,
        seed: entry_seed,
        algo2_millis,
        price_millis,
        speedup_vs_algo2: algo2_millis / price_millis.max(1e-9),
        algo2_utility,
        price_utility,
        superopt_bound,
        gap_vs_bound: if superopt_bound > 0.0 {
            (superopt_bound - price_utility) / superopt_bound
        } else {
            0.0
        },
        gap_vs_algo2: if algo2_utility > 0.0 {
            (algo2_utility - price_utility) / algo2_utility
        } else {
            0.0
        },
        iterations: stats.iterations,
        refine_iterations: stats.refine_iterations,
        sweeps: stats.sweeps,
        converged: stats.converged,
        sweep_seq_micros,
        sweep_par_micros,
        sweep_speedup: sweep_seq_micros / sweep_par_micros.max(1e-9),
        cold_millis,
        warm_millis,
        warm_speedup: cold_millis / warm_millis.max(1e-9),
        warm_iterations,
        identical,
    })
}

/// Run the fixed benchmark matrix: every paper distribution × every size
/// × {sequential, parallel} Algorithm 2, on instances derived
/// deterministically from `opts.seed`. Timing varies run to run; every
/// other field is reproducible, and `identical` is `true` in every entry
/// by the determinism contract (the binary test and CI smoke job fail
/// otherwise).
pub fn bench_document(opts: &BenchOpts) -> Result<BenchReport, CliError> {
    let run_matrix = matches!(opts.mode, BenchMode::Matrix | BenchMode::Full);
    let run_incremental = matches!(opts.mode, BenchMode::Incremental | BenchMode::Full);
    let run_scale = matches!(opts.mode, BenchMode::Scale);

    let mut entries = Vec::new();
    let mut index = 0_usize;
    for (size, servers, beta) in if run_matrix { bench_sizes(opts.small) } else { Vec::new() } {
        for (dist_name, dist) in bench_distributions() {
            let spec = InstanceSpec { servers, beta, capacity: 1000.0, dist };
            let entry_seed = batch_seed(opts.seed, index);
            index += 1;
            let mut rng = StdRng::seed_from_u64(entry_seed);
            let problem = spec
                .generate(&mut rng)
                .map_err(CliError::Problem)?;

            let (seq_millis, seq) = time_best(opts.reps, || algo2::solve(&problem));
            let (par_millis, par) = time_best(opts.reps, || algo2::solve_par(&problem));
            let seq_utility = seq.total_utility(&problem);
            let par_utility = par.total_utility(&problem);
            let so_bound = superopt::super_optimal(&problem).utility;
            let (superopt_micros, linearize_micros, assign_micros) = stage_breakdown(&problem);
            let (kernel_sweep_micros, dispatch_sweep_micros) =
                kernel_vs_dispatch(&problem, opts.reps);
            entries.push(BenchEntry {
                dist: dist_name.to_string(),
                size: size.to_string(),
                servers,
                threads: spec.threads(),
                seed: entry_seed,
                seq_millis,
                par_millis,
                speedup: seq_millis / par_millis.max(1e-9),
                seq_utility,
                par_utility,
                identical: seq == par,
                so_bound,
                ratio_vs_so: if so_bound > 0.0 { seq_utility / so_bound } else { 1.0 },
                superopt_micros,
                linearize_micros,
                assign_micros,
                kernel_sweep_micros,
                dispatch_sweep_micros,
            });
        }
    }
    let mut discrete_path = Vec::new();
    if run_matrix {
        // Seeds decoupled from both other blocks (same convention as the
        // drift suite) so adding cells never reshuffles instances.
        for (ladder_index, (size, servers, beta)) in
            bench_sizes(opts.small).into_iter().enumerate()
        {
            let entry_seed = batch_seed(opts.seed, 2000 + ladder_index);
            discrete_path.push(discrete_path_entry(
                &format!("staircase-{size}"),
                servers * beta,
                opts.reps,
                entry_seed,
            ));
        }
    }
    let mut incremental = Vec::new();
    if run_incremental {
        // Seeds decoupled from the matrix block so adding matrix cells
        // never reshuffles drift instances.
        let mut drift_index = 1000_usize;
        for (size, servers, beta, epochs) in drift_sizes(opts.small) {
            for (dist_name, dist) in bench_distributions() {
                let entry_seed = batch_seed(opts.seed, drift_index);
                drift_index += 1;
                incremental.push(drift_entry(
                    dist_name, &dist, size, servers, beta, epochs, entry_seed,
                )?);
            }
        }
    }

    let mut scale = Vec::new();
    if run_scale {
        // Seeds decoupled from the matrix (0..), drift (1000..) and
        // ladder (2000..) blocks so adding cells anywhere never
        // reshuffles another suite's instances.
        // `--small` caps the suite at 10^5; an explicit tighter
        // `--max-threads` composes rather than being ignored.
        let max = if opts.small {
            opts.max_threads.min(100_000)
        } else {
            opts.max_threads
        };
        for (scale_index, (dist_name, size, spec)) in
            scale_specs(max).into_iter().enumerate()
        {
            let entry_seed = batch_seed(opts.seed, 3000 + scale_index);
            scale.push(scale_entry(dist_name, size, &spec, opts.reps, entry_seed)?);
        }
    }

    Ok(BenchReport {
        version: BENCH_VERSION,
        solver: "algo2".to_string(),
        pool_threads: rayon::current_num_threads(),
        hardware_threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
        seed: opts.seed,
        entries,
        incremental,
        discrete_path,
        scale,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_problem_json() -> String {
        serde_json::to_string(&ProblemFile {
            servers: 2,
            capacity: 10.0,
            threads: vec![
                UtilitySpec::Power { scale: 4.0, beta: 0.5, cap: 10.0 },
                UtilitySpec::Log { scale: 3.0, rate: 1.0, cap: 10.0 },
                UtilitySpec::CappedLinear { slope: 2.0, knee: 3.0, cap: 10.0 },
            ],
        })
        .unwrap()
    }

    #[test]
    fn solve_round_trip() {
        let sol = solve_document(&tiny_problem_json(), "algo2", 0).unwrap();
        assert_eq!(sol.solver, "algo2");
        assert_eq!(sol.server.len(), 3);
        assert!(sol.total_utility > 0.0);
        assert!(sol.bound_ratio >= GUARANTEE - 1e-9);
        assert!(sol.bound_ratio <= 1.0 + 1e-9);
        // The solution document itself serializes (floats may move by an
        // ulp through JSON text, so compare with tolerance).
        let json = serde_json::to_string(&sol).unwrap();
        let back: SolutionFile = serde_json::from_str(&json).unwrap();
        assert_eq!(back.solver, sol.solver);
        assert_eq!(back.server, sol.server);
        assert!((back.total_utility - sol.total_utility).abs() < 1e-12);
        assert!((back.bound_ratio - sol.bound_ratio).abs() < 1e-12);
    }

    #[test]
    fn every_registered_solver_runs() {
        for name in SOLVER_NAMES {
            // `exact` is fine here: only 3 threads.
            let sol = solve_document(&tiny_problem_json(), name, 1)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(&sol.solver.as_str(), name);
        }
    }

    #[test]
    fn unknown_solver_is_reported() {
        let err = solve_document(&tiny_problem_json(), "quantum", 0).unwrap_err();
        assert!(matches!(err, CliError::UnknownSolver(_)));
        assert!(err.to_string().contains("quantum"));
    }

    #[test]
    fn bad_spec_names_the_thread() {
        let json = serde_json::to_string(&ProblemFile {
            servers: 1,
            capacity: 5.0,
            threads: vec![
                UtilitySpec::Power { scale: 1.0, beta: 0.5, cap: 5.0 },
                UtilitySpec::Power { scale: 1.0, beta: 7.0, cap: 5.0 }, // convex
            ],
        })
        .unwrap();
        let err = solve_document(&json, "algo2", 0).unwrap_err();
        match err {
            CliError::Spec { thread, .. } => assert_eq!(thread, 1),
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn malformed_json_is_a_parse_error() {
        let err = solve_document("{nope", "algo2", 0).unwrap_err();
        assert!(matches!(err, CliError::Parse(_)));
    }

    #[test]
    fn generated_documents_solve() {
        let opts = GenerateOpts {
            servers: 4,
            beta: 3,
            capacity: 100.0,
            dist: Distribution::Discrete { gamma: 0.85, theta: 5.0 },
            seed: 7,
        };
        let doc = generate_document(&opts);
        assert_eq!(doc.threads.len(), 12);
        let json = serde_json::to_string(&doc).unwrap();
        let sol = solve_document(&json, "algo2", 0).unwrap();
        assert!(sol.bound_ratio >= GUARANTEE - 1e-9);
    }

    #[test]
    fn generation_is_deterministic() {
        let opts = GenerateOpts::default();
        assert_eq!(generate_document(&opts), generate_document(&opts));
    }

    #[test]
    fn churn_with_generated_script_runs() {
        let report = churn_document(&tiny_problem_json(), None, &ChurnOpts::default()).unwrap();
        assert_eq!(report.epochs.len(), FaultScriptConfig::default().epochs);
        assert!(report.mean_retention.is_finite());
        for e in &report.epochs {
            assert!(e.utility >= e.naive_utility - 1e-9 || e.events == 0);
        }
        // Report round-trips through JSON.
        let json = serde_json::to_string(&report).unwrap();
        let back: ChurnReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.epochs.len(), report.epochs.len());
    }

    #[test]
    fn churn_with_script_file_runs() {
        let script = serde_json::to_string(&ScriptFile {
            epochs: 6,
            events: vec![
                EventSpec::ServerDown { epoch: 1, server: 0 },
                EventSpec::ThreadArrived {
                    epoch: 2,
                    utility: UtilitySpec::Power { scale: 2.0, beta: 0.5, cap: 10.0 },
                },
                EventSpec::ServerUp { epoch: 3 },
                EventSpec::ThreadDeparted { epoch: 4, thread: 1 },
                EventSpec::CapacityChanged { epoch: 5, capacity: 8.0 },
            ],
        })
        .unwrap();
        let report =
            churn_document(&tiny_problem_json(), Some(&script), &ChurnOpts::default()).unwrap();
        assert_eq!(report.epochs.len(), 6);
        // Down at 1 evacuates; up at 3 restores the second server.
        assert!(report.total_evacuations >= 1);
        assert_eq!(report.epochs[3].servers, 2);
        assert_eq!(report.epochs[5].threads, 3);
    }

    #[test]
    fn churn_script_with_bad_event_is_reported() {
        let script = serde_json::to_string(&ScriptFile {
            epochs: 2,
            events: vec![EventSpec::ServerDown { epoch: 0, server: 99 }],
        })
        .unwrap();
        let err = churn_document(&tiny_problem_json(), Some(&script), &ChurnOpts::default())
            .unwrap_err();
        assert!(matches!(err, CliError::Churn(_)), "{err}");
    }

    #[test]
    fn bench_small_matrix_is_identical_and_within_guarantee() {
        let opts = BenchOpts { small: true, seed: 7, reps: 1, mode: BenchMode::Matrix, ..BenchOpts::default() };
        let report = bench_document(&opts).unwrap();
        assert_eq!(report.version, BENCH_VERSION);
        assert_eq!(report.entries.len(), 4); // four distributions × one size
        assert!(report.incremental.is_empty(), "matrix mode ran the drift suite");
        for e in &report.entries {
            assert!(e.identical, "{}: seq/par assignments diverged", e.dist);
            assert_eq!(e.seq_utility.to_bits(), e.par_utility.to_bits(), "{}", e.dist);
            assert!(e.ratio_vs_so >= GUARANTEE - 1e-9, "{}: {}", e.dist, e.ratio_vs_so);
            assert!(e.ratio_vs_so <= 1.0 + 1e-9);
            assert!(e.seq_millis >= 0.0 && e.par_millis >= 0.0);
            assert_eq!(e.threads, 64);
        }
        // Utilities (not timings) are seed-reproducible.
        let again = bench_document(&opts).unwrap();
        for (a, b) in report.entries.iter().zip(&again.entries) {
            assert_eq!(a.seq_utility.to_bits(), b.seq_utility.to_bits());
            assert_eq!(a.seed, b.seed);
        }
    }

    #[test]
    fn bench_report_round_trips_through_json() {
        let opts = BenchOpts { small: true, seed: 1, reps: 1, mode: BenchMode::Full, ..BenchOpts::default() };
        let report = bench_document(&opts).unwrap();
        let json = serde_json::to_string_pretty(&report).unwrap();
        let back: BenchReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.entries.len(), report.entries.len());
        assert_eq!(back.incremental.len(), report.incremental.len());
        assert_eq!(back.solver, "algo2");
    }

    #[test]
    fn bench_incremental_mode_is_bit_identical_and_stays_warm() {
        let opts = BenchOpts { small: true, seed: 3, reps: 1, mode: BenchMode::Incremental, ..BenchOpts::default() };
        let report = bench_document(&opts).unwrap();
        assert!(report.entries.is_empty(), "incremental mode ran the matrix");
        assert_eq!(report.incremental.len(), 4); // four distributions × one size
        for e in &report.incremental {
            assert!(e.identical, "{}: warm/cold assignments diverged", e.dist);
            assert_eq!(e.threads, 64);
            assert_eq!(e.epochs, 30);
            assert_eq!(e.churn_per_epoch, 1);
            // Every post-baseline epoch mutates ≤1% of the threads, so
            // the engine must stay on the warm path throughout.
            assert_eq!(e.warm_epochs, e.epochs - 1, "{}", e.dist);
            assert!(e.cold_demand_maps_mean > 0.0 && e.warm_demand_maps_mean > 0.0);
            // The warm bracket must not cost *more* bisection work than
            // cold on a drift workload (latency is asserted in CI with
            // tolerance, not here — unit tests run under load).
            assert!(
                e.warm_demand_maps_mean <= e.cold_demand_maps_mean,
                "{}: warm {} maps vs cold {}",
                e.dist,
                e.warm_demand_maps_mean,
                e.cold_demand_maps_mean
            );
        }
        // Non-timing fields are seed-reproducible.
        let again = bench_document(&opts).unwrap();
        for (a, b) in report.incremental.iter().zip(&again.incremental) {
            assert_eq!(a.seed, b.seed);
            assert_eq!(a.warm_demand_maps_mean, b.warm_demand_maps_mean);
            assert_eq!(a.warm_epochs, b.warm_epochs);
        }
    }

    #[test]
    fn script_files_round_trip() {
        let file = ScriptFile {
            epochs: 3,
            events: vec![
                EventSpec::ServerUp { epoch: 0 },
                EventSpec::ThreadArrived {
                    epoch: 1,
                    utility: UtilitySpec::Log { scale: 1.0, rate: 2.0, cap: 4.0 },
                },
            ],
        };
        let json = serde_json::to_string_pretty(&file).unwrap();
        let back: ScriptFile = serde_json::from_str(&json).unwrap();
        assert_eq!(back, file);
    }

    #[test]
    fn late_events_extend_the_epoch_count() {
        let script = build_script(&ScriptFile {
            epochs: 2,
            events: vec![EventSpec::ServerUp { epoch: 9 }],
        })
        .unwrap();
        assert_eq!(script.epochs, 10);
    }

    #[test]
    fn generated_specs_match_in_process_generator() {
        // The PCHIP spec written to the file must rebuild the exact same
        // function the workload generator produced.
        let opts = GenerateOpts { servers: 2, beta: 2, ..Default::default() };
        let doc = generate_document(&opts);
        let mut rng = StdRng::seed_from_u64(opts.seed);
        let direct = aa_workloads::genutil::generate_many(
            &opts.dist,
            opts.capacity,
            4,
            &mut rng,
        );
        for (spec, g) in doc.threads.iter().zip(&direct) {
            let built = spec.build().unwrap();
            for x in [0.0, 123.0, 500.0, 987.0] {
                assert!(
                    (aa_utility::Utility::value(built.as_ref(), x)
                        - aa_utility::Utility::value(g.utility.as_ref(), x))
                    .abs()
                        < 1e-9
                );
            }
        }
    }
}
