//! `aa-solve` — thin argv wrapper over [`aa_cli`].

use std::process::ExitCode;

use aa_cli::{bench_document, churn_document, generate_document, solve_document, BenchOpts,
             ChurnOpts, GenerateOpts, SOLVER_NAMES};
use aa_sim::controller::RepairPolicy;
use aa_sim::faults::FaultScriptConfig;
use aa_workloads::Distribution;

const USAGE: &str = "\
usage:
  aa-solve solve <problem.json> [--solver NAME] [--seed S] [--pretty]
  aa-solve generate [--servers M] [--beta B] [--capacity C]
                    [--dist uniform|normal|powerlaw|discrete]
                    [--alpha A] [--gamma G] [--theta T] [--seed S] [--pretty]
  aa-solve churn <problem.json> [--script script.json] [--epochs N]
                 [--policy never|in-place|migrations|resolve] [--budget K]
                 [--solver NAME] [--seed S] [--crash-rate F] [--recovery-rate F]
                 [--flap-rate F] [--arrival-rate F] [--departure-rate F] [--pretty]
  aa-solve bench [--small] [--out BENCH_solver.json] [--seed S] [--reps R]
                 [--threads N] [--pretty]
  aa-solve solvers
";

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprint!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        return Err("missing command".into());
    };
    match command.as_str() {
        "solve" => cmd_solve(&args[1..]),
        "generate" => cmd_generate(&args[1..]),
        "churn" => cmd_churn(&args[1..]),
        "bench" => cmd_bench(&args[1..]),
        "solvers" => {
            for name in SOLVER_NAMES {
                println!("{name}");
            }
            Ok(())
        }
        other => Err(format!("unknown command {other:?}")),
    }
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Result<Option<&'a str>, String> {
    match args.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(i) => args
            .get(i + 1)
            .map(|s| Some(s.as_str()))
            .ok_or_else(|| format!("{flag} needs a value")),
    }
}

fn parsed_flag<T: std::str::FromStr>(
    args: &[String],
    flag: &str,
    default: T,
) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    match flag_value(args, flag)? {
        None => Ok(default),
        Some(raw) => raw.parse().map_err(|e| format!("bad {flag}: {e}")),
    }
}

fn cmd_solve(args: &[String]) -> Result<(), String> {
    let path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .ok_or("missing problem file path")?;
    let solver = flag_value(args, "--solver")?.unwrap_or("algo2");
    let seed: u64 = parsed_flag(args, "--seed", 2016)?;
    let pretty = args.iter().any(|a| a == "--pretty");

    let json = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let solution = solve_document(&json, solver, seed).map_err(|e| e.to_string())?;
    let out = if pretty {
        serde_json::to_string_pretty(&solution)
    } else {
        serde_json::to_string(&solution)
    }
    .map_err(|e| e.to_string())?;
    println!("{out}");
    eprintln!(
        "solver={} total={:.6} bound={:.6} ratio={:.4} (guarantee {:.4})",
        solution.solver,
        solution.total_utility,
        solution.upper_bound,
        solution.bound_ratio,
        aa_cli::GUARANTEE
    );
    Ok(())
}

fn cmd_churn(args: &[String]) -> Result<(), String> {
    let path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .ok_or("missing problem file path")?;
    let budget: usize = parsed_flag(args, "--budget", 2)?;
    let policy = match flag_value(args, "--policy")?.unwrap_or("migrations") {
        "never" => RepairPolicy::Never,
        "in-place" => RepairPolicy::InPlace,
        "migrations" => RepairPolicy::Migrations(budget),
        "resolve" => RepairPolicy::Resolve,
        other => return Err(format!("unknown policy {other:?}")),
    };
    let defaults = FaultScriptConfig::default();
    let opts = ChurnOpts {
        policy,
        solver: flag_value(args, "--solver")?.unwrap_or("algo2").to_string(),
        seed: parsed_flag(args, "--seed", 2016)?,
        config: FaultScriptConfig {
            epochs: parsed_flag(args, "--epochs", defaults.epochs)?,
            crash_rate: parsed_flag(args, "--crash-rate", defaults.crash_rate)?,
            recovery_rate: parsed_flag(args, "--recovery-rate", defaults.recovery_rate)?,
            flap_rate: parsed_flag(args, "--flap-rate", defaults.flap_rate)?,
            arrival_rate: parsed_flag(args, "--arrival-rate", defaults.arrival_rate)?,
            departure_rate: parsed_flag(args, "--departure-rate", defaults.departure_rate)?,
            ..defaults
        },
    };

    let json = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let script_json = match flag_value(args, "--script")? {
        Some(script_path) => Some(
            std::fs::read_to_string(script_path).map_err(|e| format!("{script_path}: {e}"))?,
        ),
        None => None,
    };
    let report = churn_document(&json, script_json.as_deref(), &opts)
        .map_err(|e| e.to_string())?;
    let out = if args.iter().any(|a| a == "--pretty") {
        serde_json::to_string_pretty(&report)
    } else {
        serde_json::to_string(&report)
    }
    .map_err(|e| e.to_string())?;
    println!("{out}");
    eprintln!(
        "epochs={} mean_retention={:.4} min_retention={:.4} degraded={} evacuated={} migrated={}",
        report.epochs.len(),
        report.mean_retention,
        report.min_retention,
        report.degraded_epochs,
        report.total_evacuations,
        report.total_migrations
    );
    Ok(())
}

fn cmd_bench(args: &[String]) -> Result<(), String> {
    let defaults = BenchOpts::default();
    let opts = BenchOpts {
        small: args.iter().any(|a| a == "--small"),
        seed: parsed_flag(args, "--seed", defaults.seed)?,
        reps: parsed_flag(args, "--reps", defaults.reps)?,
    };
    let out_path = flag_value(args, "--out")?.unwrap_or("BENCH_solver.json");
    let threads: usize = parsed_flag(args, "--threads", 0)?;

    let report = if threads > 0 {
        rayon::with_threads(threads, || bench_document(&opts))
    } else {
        bench_document(&opts)
    }
    .map_err(|e| e.to_string())?;

    let json = if args.iter().any(|a| a == "--pretty") {
        serde_json::to_string_pretty(&report)
    } else {
        serde_json::to_string(&report)
    }
    .map_err(|e| e.to_string())?;
    std::fs::write(out_path, json.as_bytes()).map_err(|e| format!("{out_path}: {e}"))?;

    eprintln!(
        "bench: solver={} pool_threads={} hardware_threads={} seed={} → {out_path}",
        report.solver, report.pool_threads, report.hardware_threads, report.seed
    );
    for e in &report.entries {
        eprintln!(
            "  {:<9} {:<6} n={:<6} seq={:>9.3}ms par={:>9.3}ms speedup={:>5.2}x \
             ratio={:.4} identical={}",
            e.dist, e.size, e.threads, e.seq_millis, e.par_millis, e.speedup,
            e.ratio_vs_so, e.identical
        );
    }
    if report.entries.iter().any(|e| !e.identical) {
        return Err("determinism violation: a parallel solve diverged from sequential".into());
    }
    Ok(())
}

fn cmd_generate(args: &[String]) -> Result<(), String> {
    let defaults = GenerateOpts::default();
    let dist = match flag_value(args, "--dist")?.unwrap_or("uniform") {
        "uniform" => Distribution::Uniform,
        "normal" => Distribution::paper_normal(),
        "powerlaw" => Distribution::PowerLaw {
            alpha: parsed_flag(args, "--alpha", 2.0)?,
        },
        "discrete" => Distribution::Discrete {
            gamma: parsed_flag(args, "--gamma", 0.85)?,
            theta: parsed_flag(args, "--theta", 5.0)?,
        },
        other => return Err(format!("unknown distribution {other:?}")),
    };
    let opts = GenerateOpts {
        servers: parsed_flag(args, "--servers", defaults.servers)?,
        beta: parsed_flag(args, "--beta", defaults.beta)?,
        capacity: parsed_flag(args, "--capacity", defaults.capacity)?,
        dist,
        seed: parsed_flag(args, "--seed", defaults.seed)?,
    };
    let doc = generate_document(&opts);
    let out = if args.iter().any(|a| a == "--pretty") {
        serde_json::to_string_pretty(&doc)
    } else {
        serde_json::to_string(&doc)
    }
    .map_err(|e| e.to_string())?;
    println!("{out}");
    Ok(())
}
