//! `aa-solve` — thin argv wrapper over [`aa_cli`].

use std::process::ExitCode;

use aa_cli::fleet::{parse_ladder, run_fleet_chaos, run_fleet_serve, FleetOpts};
use aa_cli::serve::{run_serve, ServeOpts};
use aa_cli::worker::{run_worker, WorkerOpts};
use aa_cli::{bench_document, churn_document, generate_document, solve_document, BenchMode,
             BenchOpts, ChurnOpts, CliError, GenerateOpts, SOLVER_NAMES};
use aa_sim::controller::RepairPolicy;
use aa_sim::faults::FaultScriptConfig;
use aa_sim::{ChaosConfig, FleetChaosConfig, ProcessFault};
use aa_workloads::Distribution;

const USAGE: &str = "\
usage:
  aa-solve solve <problem.json> [--solver NAME] [--seed S] [--pretty]
                 [--trace out.json]
  aa-solve generate [--servers M] [--beta B] [--capacity C]
                    [--dist uniform|normal|powerlaw|discrete]
                    [--alpha A] [--gamma G] [--theta T] [--seed S] [--pretty]
  aa-solve churn <problem.json> [--script script.json] [--epochs N]
                 [--policy never|in-place|migrations|resolve] [--budget K]
                 [--solver NAME] [--seed S] [--crash-rate F] [--recovery-rate F]
                 [--flap-rate F] [--arrival-rate F] [--departure-rate F] [--pretty]
  aa-solve bench [--small] [--mode matrix|incremental|scale|full]
                 [--out BENCH_solver.json] [--seed S] [--reps R]
                 [--threads N] [--max-threads N] [--trace out.json] [--pretty]
  aa-solve serve [--shards N | --fleet N] [--queue N] [--deadline-ms D]
                 [--grace-ms G] [--breaker K] [--cooldown N]
                 [--max-line-bytes B] [--counters PATH]
                 [--metrics-addr HOST:PORT] [--metrics-dump PATH]
                 [--slo-p99-ms P] [--trace out.json]
                 fleet only: [--heartbeat-ms H] [--heartbeat-miss K]
                 [--max-retries R] [--max-restarts N] [--drain-timeout-ms D]
                 [--max-streams N] [--ladder exact-bb,algo2-refined,algo2,uu]
                 [--seed S] [--worker-cmd PATH]
  aa-solve chaos [--shards N] [--rounds N] [--kills N]
                 [--streams-per-shard N] [--seed S] [--out PATH] [--pretty]
  aa-solve chaos --fleet [--workers N] [--streams-per-worker N] [--rounds N]
                 [--kills N] [--stalls N] [--garbage N] [--stall-millis MS]
                 [--seed S] [--out PATH] [--pretty]
  aa-solve solvers

global flags (any command):
  --log-format pretty|json   stderr diagnostics format (default pretty)

serve reads LDJSON requests {\"id\":…, \"stream\":…, \"deadline_ms\":…,
\"problem\":{…}} on stdin and writes one response per line on stdout;
requests beyond the admission queue are shed with
{\"status\":\"overloaded\",\"retry_after_ms\":…}. --shards N runs N
crash-isolated worker shards under a supervisor: requests sharing a
\"stream\" key route to a fixed shard (warm incremental state), a
panicking solve answers {\"status\":\"error\",\"class\":\"solve_panic\"}
and a dead shard is restarted with backoff while its queue drains as
\"internal\" errors. Lines beyond --max-line-bytes (default 1 MiB) are
answered with a \"parse\" error. Counters are dumped to stderr (and
--counters PATH as JSON) at EOF. --metrics-addr serves GET /metrics
(Prometheus text) and /metrics.json while the loop runs; --metrics-dump
writes the JSON snapshot at EOF.
--fleet N replaces the in-process shards with N worker *processes*
(this binary re-execed in a hidden serve-worker mode) supervised over
stdin/stdout pipes: heartbeats every --heartbeat-ms (dead after
--heartbeat-miss silent rounds), crashed workers restart with backoff
(retired after --max-restarts) while their in-flight requests replay on
survivors (up to --max-retries dispatches each, then a retryable
\"internal\" error; answers are exactly-once throughout). A control
line {\"control\":\"resize\",\"fleet\":N} resizes the fleet live —
removed workers drain in-flight work before exiting, and their ring
ranges hand off to the survivors. On stdin EOF the fleet drains for
--drain-timeout-ms, then answers the remainder with retryable
\"shutdown\" errors. ok responses gain \"worker\", \"attempts\", and
\"solve_micros\" fields; bad control lines are answered with class
\"control\". Fleet metrics appear as aa_fleet_* series (per-worker
series labeled {worker=…}); each worker also federates its own
registry to the front-end over heartbeats, so /metrics re-exports
worker series with a worker= label plus a worker=\"fleet\" merged
aggregate. --slo-p99-ms P (default 100) sets the end-to-end p99
latency objective tracked by the aa_slo_* series: per-class
aa_slo_e2e_micros histograms plus an error-budget burn rate
(aa_slo_burn_rate, 1.0 = burning exactly the 1% budget). serve
--fleet --trace writes a *merged* Chrome trace at EOF: workers batch
their pipeline spans over the control pipe and the front-end stitches
them — clock-aligned, one lane per worker pid — under its own
per-request admission/queue/dispatch spans, so each request shows one
end-to-end timeline across processes.
chaos runs the seeded kill/stall/panic storm from aa-sim against a real
shard pool (every shard killed --kills times) and prints the chaos
report as JSON; it exits nonzero unless every robustness invariant held
(no request lost or duplicated, every shard restarted, warm latency
recovered). chaos --fleet runs the process-level storm instead: real
worker processes take --kills SIGKILLs, --stalls heartbeat stalls of
--stall-millis, and --garbage corrupt-frame injections at seeded
per-worker solve counts; the gate additionally requires byte-exact
rebalance back to ring owners and solve outputs bit-identical to a
single-process reference. Same seed, same report, byte for byte.
--trace records the solve pipeline's spans and writes a Chrome
trace_event file (open at chrome://tracing or ui.perfetto.dev).

exit codes:
  0  success                      5  deadline exceeded / cancelled
  1  usage error                  6  i/o failure
  2  malformed input (JSON, spec, 7  churn or chaos run failed
     problem validation)          8  metrics endpoint bind failed
  3  unknown solver               9  fleet worker failed to spawn
  4  solve failed (too large, non-finite, infeasible)
";

/// A binary-level failure: either a usage mistake (exit 1, prints the
/// usage text) or an application error (exit code per [`CliError`]
/// class).
enum Failure {
    Usage(String),
    App(CliError),
}

impl Failure {
    fn exit_code(&self) -> u8 {
        match self {
            Failure::Usage(_) => 1,
            Failure::App(e) => e.exit_code(),
        }
    }
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Failure::Usage(msg) => write!(f, "{msg}"),
            Failure::App(e) => write!(f, "{e}"),
        }
    }
}

impl From<CliError> for Failure {
    fn from(e: CliError) -> Self {
        Failure::App(e)
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(failure) => {
            aa_obs::obs_error!("cli", "{failure}");
            if matches!(failure, Failure::Usage(_)) {
                eprint!("{USAGE}");
            }
            ExitCode::from(failure.exit_code())
        }
    }
}

fn run() -> Result<(), Failure> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Configure the logger before dispatch so every diagnostic line —
    // including the error main() prints — honors the requested format.
    let format: aa_obs::LogFormat = parsed_flag(&args, "--log-format", aa_obs::LogFormat::default())?;
    aa_obs::init_logger(aa_obs::log::LogLevel::Info, format);
    let Some(command) = args.first() else {
        return Err(Failure::Usage("missing command".into()));
    };
    match command.as_str() {
        "solve" => cmd_solve(&args[1..]),
        "generate" => cmd_generate(&args[1..]),
        "churn" => cmd_churn(&args[1..]),
        "bench" => cmd_bench(&args[1..]),
        "serve" => cmd_serve(&args[1..]),
        // Hidden: the fleet front-end re-execs this binary as its
        // worker processes. Not part of the public surface.
        "serve-worker" => cmd_serve_worker(&args[1..]),
        "chaos" => cmd_chaos(&args[1..]),
        "solvers" => {
            for name in SOLVER_NAMES {
                println!("{name}");
            }
            Ok(())
        }
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(Failure::Usage(format!("unknown command {other:?}"))),
    }
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Result<Option<&'a str>, Failure> {
    match args.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(i) => args
            .get(i + 1)
            .map(|s| Some(s.as_str()))
            .ok_or_else(|| Failure::Usage(format!("{flag} needs a value"))),
    }
}

fn parsed_flag<T: std::str::FromStr>(
    args: &[String],
    flag: &str,
    default: T,
) -> Result<T, Failure>
where
    T::Err: std::fmt::Display,
{
    match flag_value(args, flag)? {
        None => Ok(default),
        Some(raw) => raw
            .parse()
            .map_err(|e| Failure::Usage(format!("bad {flag}: {e}"))),
    }
}

/// Read a file, classifying failures as i/o errors (exit 6) with the
/// path in the message.
fn read_file(path: &str) -> Result<String, Failure> {
    std::fs::read_to_string(path).map_err(|e| {
        Failure::App(CliError::Io(std::io::Error::new(e.kind(), format!("{path}: {e}"))))
    })
}

fn to_json<T: serde::Serialize>(value: &T, pretty: bool) -> Result<String, Failure> {
    if pretty {
        serde_json::to_string_pretty(value)
    } else {
        serde_json::to_string(value)
    }
    .map_err(|e| Failure::App(CliError::Parse(e)))
}

/// Write `contents` to `path`, classifying failures as i/o errors with
/// the path in the message.
fn write_file(path: &str, contents: &str) -> Result<(), Failure> {
    std::fs::write(path, contents.as_bytes()).map_err(|e| {
        Failure::App(CliError::Io(std::io::Error::new(e.kind(), format!("{path}: {e}"))))
    })
}

/// Arm span recording when `--trace PATH` was given: install the
/// process collector (idempotent) and enable it. Returns the path.
fn trace_flag(args: &[String]) -> Result<Option<&str>, Failure> {
    let path = flag_value(args, "--trace")?;
    if path.is_some() {
        aa_obs::Collector::install().set_enabled(true);
    }
    Ok(path)
}

/// Dump the recorded spans as a Chrome trace_event file, if recording
/// was armed by [`trace_flag`].
fn write_trace(path: Option<&str>) -> Result<(), Failure> {
    let Some(path) = path else { return Ok(()) };
    let collector = aa_obs::Collector::install();
    write_file(path, &aa_obs::export::chrome_trace_json(collector))?;
    aa_obs::obs_info!("trace", "trace: {} spans → {path}", collector.len());
    Ok(())
}

fn cmd_solve(args: &[String]) -> Result<(), Failure> {
    let path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .ok_or_else(|| Failure::Usage("missing problem file path".into()))?;
    let solver = flag_value(args, "--solver")?.unwrap_or("algo2");
    let seed: u64 = parsed_flag(args, "--seed", 2016)?;
    let pretty = args.iter().any(|a| a == "--pretty");
    let trace_path = trace_flag(args)?;

    let json = read_file(path)?;
    let solution = solve_document(&json, solver, seed)?;
    write_trace(trace_path)?;
    println!("{}", to_json(&solution, pretty)?);
    aa_obs::obs_info!(
        "solve",
        "solver={} total={:.6} bound={:.6} ratio={:.4} (guarantee {:.4})",
        solution.solver,
        solution.total_utility,
        solution.upper_bound,
        solution.bound_ratio,
        aa_cli::GUARANTEE
    );
    Ok(())
}

fn cmd_churn(args: &[String]) -> Result<(), Failure> {
    let path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .ok_or_else(|| Failure::Usage("missing problem file path".into()))?;
    let budget: usize = parsed_flag(args, "--budget", 2)?;
    let policy = match flag_value(args, "--policy")?.unwrap_or("migrations") {
        "never" => RepairPolicy::Never,
        "in-place" => RepairPolicy::InPlace,
        "migrations" => RepairPolicy::Migrations(budget),
        "resolve" => RepairPolicy::Resolve,
        other => return Err(Failure::Usage(format!("unknown policy {other:?}"))),
    };
    let defaults = FaultScriptConfig::default();
    let opts = ChurnOpts {
        policy,
        solver: flag_value(args, "--solver")?.unwrap_or("algo2").to_string(),
        seed: parsed_flag(args, "--seed", 2016)?,
        config: FaultScriptConfig {
            epochs: parsed_flag(args, "--epochs", defaults.epochs)?,
            crash_rate: parsed_flag(args, "--crash-rate", defaults.crash_rate)?,
            recovery_rate: parsed_flag(args, "--recovery-rate", defaults.recovery_rate)?,
            flap_rate: parsed_flag(args, "--flap-rate", defaults.flap_rate)?,
            arrival_rate: parsed_flag(args, "--arrival-rate", defaults.arrival_rate)?,
            departure_rate: parsed_flag(args, "--departure-rate", defaults.departure_rate)?,
            ..defaults
        },
    };

    let json = read_file(path)?;
    let script_json = match flag_value(args, "--script")? {
        Some(script_path) => Some(read_file(script_path)?),
        None => None,
    };
    let report = churn_document(&json, script_json.as_deref(), &opts)?;
    println!("{}", to_json(&report, args.iter().any(|a| a == "--pretty"))?);
    aa_obs::obs_info!(
        "churn",
        "epochs={} mean_retention={:.4} min_retention={:.4} degraded={} evacuated={} migrated={}",
        report.epochs.len(),
        report.mean_retention,
        report.min_retention,
        report.degraded_epochs,
        report.total_evacuations,
        report.total_migrations
    );
    Ok(())
}

fn cmd_bench(args: &[String]) -> Result<(), Failure> {
    let defaults = BenchOpts::default();
    let mode = match flag_value(args, "--mode")?.unwrap_or("full") {
        "matrix" => BenchMode::Matrix,
        "incremental" => BenchMode::Incremental,
        "scale" => BenchMode::Scale,
        "full" => BenchMode::Full,
        other => return Err(Failure::Usage(format!("unknown bench mode {other:?}"))),
    };
    let opts = BenchOpts {
        small: args.iter().any(|a| a == "--small"),
        seed: parsed_flag(args, "--seed", defaults.seed)?,
        reps: parsed_flag(args, "--reps", defaults.reps)?,
        mode,
        max_threads: parsed_flag(args, "--max-threads", defaults.max_threads)?,
    };
    let out_path = flag_value(args, "--out")?.unwrap_or("BENCH_solver.json");
    let threads: usize = parsed_flag(args, "--threads", 0)?;
    let trace_path = trace_flag(args)?;

    let report = if threads > 0 {
        rayon::with_threads(threads, || bench_document(&opts))
    } else {
        bench_document(&opts)
    }?;
    write_trace(trace_path)?;

    let json = to_json(&report, args.iter().any(|a| a == "--pretty"))?;
    write_file(out_path, &json)?;

    aa_obs::obs_info!(
        "bench",
        "bench: solver={} pool_threads={} hardware_threads={} seed={} → {out_path}",
        report.solver, report.pool_threads, report.hardware_threads, report.seed
    );
    if report.pool_threads < 4 {
        aa_obs::obs_warn!(
            "bench",
            "POOL TOO NARROW: pool_threads={} (hardware_threads={}). Every parallel \
             speedup column in this report is ≈1.0 and the par gates are vacuous. \
             Re-run with AA_NUM_THREADS>=4 (or --threads 4) on a multi-core host \
             before reading speedups or committing this report as a baseline.",
            report.pool_threads, report.hardware_threads
        );
    }
    for e in &report.entries {
        aa_obs::obs_info!(
            "bench",
            "  {:<9} {:<6} n={:<6} seq={:>9.3}ms par={:>9.3}ms speedup={:>5.2}x \
             ratio={:.4} identical={} stages so={}µs lin={}µs asg={}µs",
            e.dist, e.size, e.threads, e.seq_millis, e.par_millis, e.speedup,
            e.ratio_vs_so, e.identical,
            e.superopt_micros, e.linearize_micros, e.assign_micros
        );
    }
    for e in &report.discrete_path {
        aa_obs::obs_info!(
            "bench",
            "  {:<16} n={:<6} ladder={:>9.1}µs generic={:>9.1}µs engaged={} identical={}",
            e.name, e.threads, e.ladder_micros, e.generic_micros,
            e.ladder_engaged, e.identical
        );
    }
    for e in &report.incremental {
        aa_obs::obs_info!(
            "bench",
            "  {:<9} {:<12} n={:<6} cold={:>9.3}ms warm={:>9.3}ms speedup={:>5.2}x \
             maps cold={:.1} warm={:.1} warm_epochs={}/{} identical={}",
            e.dist,
            e.size,
            e.threads,
            e.cold_median_millis,
            e.warm_median_millis,
            e.speedup,
            e.cold_demand_maps_mean,
            e.warm_demand_maps_mean,
            e.warm_epochs,
            e.epochs,
            e.identical
        );
    }
    for e in &report.scale {
        aa_obs::obs_info!(
            "bench",
            "  {:<9} {:<11} n={:<8} algo2={:>10.3}ms price={:>10.3}ms speedup={:>5.2}x \
             gap_bound={:.4} gap_algo2={:.4} iters={}+{} converged={} \
             sweep seq={:.1}µs par={:.1}µs ({:.2}x) warm={:.3}ms cold={:.3}ms ({:.2}x) identical={}",
            e.dist, e.size, e.threads, e.algo2_millis, e.price_millis, e.speedup_vs_algo2,
            e.gap_vs_bound, e.gap_vs_algo2, e.iterations, e.refine_iterations, e.converged,
            e.sweep_seq_micros, e.sweep_par_micros, e.sweep_speedup,
            e.warm_millis, e.cold_millis, e.warm_speedup, e.identical
        );
    }
    if report.entries.iter().any(|e| !e.identical) {
        return Err(Failure::App(CliError::Churn(
            "determinism violation: a parallel solve diverged from sequential".into(),
        )));
    }
    if report.incremental.iter().any(|e| !e.identical) {
        return Err(Failure::App(CliError::Churn(
            "determinism violation: a warm incremental solve diverged from cold".into(),
        )));
    }
    if report.discrete_path.iter().any(|e| !e.identical || !e.ladder_engaged) {
        return Err(Failure::App(CliError::Churn(
            "discrete fast path violation: ladder disengaged or diverged from generic".into(),
        )));
    }
    if report.scale.iter().any(|e| !e.identical) {
        return Err(Failure::App(CliError::Churn(
            "determinism violation: a price solve diverged across pool widths".into(),
        )));
    }
    if let Some(e) = report.scale.iter().find(|e| !e.converged || e.gap_vs_bound > 0.05) {
        return Err(Failure::App(CliError::Churn(format!(
            "price convergence violation: {} {} converged={} gap_vs_bound={:.4} \
             (tolerance: converged within the iteration cap, gap ≤ 0.05)",
            e.dist, e.size, e.converged, e.gap_vs_bound
        ))));
    }
    Ok(())
}

fn cmd_serve(args: &[String]) -> Result<(), Failure> {
    if flag_value(args, "--fleet")?.is_some() {
        return cmd_fleet_serve(args);
    }
    let defaults = ServeOpts::default();
    let opts = ServeOpts {
        queue: parsed_flag(args, "--queue", defaults.queue)?,
        default_deadline_ms: match flag_value(args, "--deadline-ms")? {
            None => None,
            Some(raw) => Some(
                raw.parse()
                    .map_err(|e| Failure::Usage(format!("bad --deadline-ms: {e}")))?,
            ),
        },
        grace_ms: parsed_flag(args, "--grace-ms", defaults.grace_ms)?,
        breaker_threshold: parsed_flag(args, "--breaker", defaults.breaker_threshold)?,
        breaker_cooldown: parsed_flag(args, "--cooldown", defaults.breaker_cooldown)?,
        shards: parsed_flag(args, "--shards", defaults.shards)?,
        max_line_bytes: parsed_flag(args, "--max-line-bytes", defaults.max_line_bytes)?,
        slo_p99_ms: match flag_value(args, "--slo-p99-ms")? {
            None => None,
            Some(raw) => Some(
                raw.parse()
                    .map_err(|e| Failure::Usage(format!("bad --slo-p99-ms: {e}")))?,
            ),
        },
        chaos: None,
    };
    let counters_path = flag_value(args, "--counters")?;
    let metrics_dump = flag_value(args, "--metrics-dump")?;
    let trace_path = trace_flag(args)?;
    let registry = aa_obs::global();
    if let Some(addr) = flag_value(args, "--metrics-addr")? {
        let local = aa_obs::export::spawn_metrics_server(addr, registry).map_err(|e| {
            Failure::App(CliError::MetricsBind(std::io::Error::new(
                e.kind(),
                format!("{addr}: {e}"),
            )))
        })?;
        aa_obs::obs_info!("serve", "metrics: http://{local}/metrics");
    }

    let counters = run_serve(std::io::stdin().lock(), std::io::stdout(), &opts, registry)?;

    aa_obs::obs_info!(
        "serve",
        "serve: received={} solved={} shed={} expired_in_queue={} parse_errors={} \
         solve_errors={} solve_panics={} internal_errors={} deadline_misses={}",
        counters.received,
        counters.solved,
        counters.shed,
        counters.expired_in_queue,
        counters.parse_errors,
        counters.solve_errors,
        counters.solve_panics,
        counters.internal_errors,
        counters.deadline_misses
    );
    for (tier, c) in &counters.per_tier {
        let mean_ms = if c.answered > 0 {
            c.total_micros as f64 / c.answered as f64 / 1e3
        } else {
            0.0
        };
        aa_obs::obs_info!(
            "serve",
            "  tier {tier}: answered={} mean={mean_ms:.3}ms max={:.3}ms",
            c.answered,
            c.max_micros as f64 / 1e3
        );
    }
    if let Some(path) = counters_path {
        write_file(path, &to_json(&counters, true)?)?;
    }
    if let Some(path) = metrics_dump {
        write_file(path, &aa_obs::export::json_snapshot(registry))?;
    }
    write_trace(trace_path)?;
    Ok(())
}

/// `serve --fleet N`: the multi-process front-end.
fn cmd_fleet_serve(args: &[String]) -> Result<(), Failure> {
    let defaults = FleetOpts::default();
    let workers: usize = parsed_flag(args, "--fleet", defaults.workers)?;
    if workers == 0 {
        return Err(Failure::Usage("--fleet needs at least 1 worker".into()));
    }
    let ladder = match flag_value(args, "--ladder")? {
        None => None,
        Some(raw) => Some(parse_ladder(raw).map_err(|e| Failure::Usage(format!("bad --ladder: {e}")))?),
    };
    let opts = FleetOpts {
        workers,
        queue: parsed_flag(args, "--queue", defaults.queue)?,
        default_deadline_ms: match flag_value(args, "--deadline-ms")? {
            None => None,
            Some(raw) => Some(
                raw.parse()
                    .map_err(|e| Failure::Usage(format!("bad --deadline-ms: {e}")))?,
            ),
        },
        grace_ms: parsed_flag(args, "--grace-ms", defaults.grace_ms)?,
        max_line_bytes: parsed_flag(args, "--max-line-bytes", defaults.max_line_bytes)?,
        heartbeat_ms: parsed_flag(args, "--heartbeat-ms", defaults.heartbeat_ms)?,
        heartbeat_miss_limit: parsed_flag(args, "--heartbeat-miss", defaults.heartbeat_miss_limit)?,
        max_retries: parsed_flag(args, "--max-retries", defaults.max_retries)?,
        max_restarts: parsed_flag(args, "--max-restarts", defaults.max_restarts)?,
        drain_timeout_ms: parsed_flag(args, "--drain-timeout-ms", defaults.drain_timeout_ms)?,
        max_streams: parsed_flag(args, "--max-streams", defaults.max_streams)?,
        breaker_threshold: parsed_flag(args, "--breaker", defaults.breaker_threshold)?,
        breaker_cooldown: parsed_flag(args, "--cooldown", defaults.breaker_cooldown)?,
        ladder,
        seed: parsed_flag(args, "--seed", defaults.seed)?,
        worker_cmd: flag_value(args, "--worker-cmd")?.map(std::path::PathBuf::from),
        // The fleet front-end merges worker span batches and writes the
        // trace itself at shutdown; the single-process write_trace path
        // must stay out of the way here.
        trace: flag_value(args, "--trace")?.map(std::path::PathBuf::from),
        slo_p99_ms: match flag_value(args, "--slo-p99-ms")? {
            None => None,
            Some(raw) => Some(
                raw.parse()
                    .map_err(|e| Failure::Usage(format!("bad --slo-p99-ms: {e}")))?,
            ),
        },
        chaos: None,
    };
    let counters_path = flag_value(args, "--counters")?;
    let metrics_dump = flag_value(args, "--metrics-dump")?;
    let registry = aa_obs::global();
    if let Some(addr) = flag_value(args, "--metrics-addr")? {
        let local = aa_obs::export::spawn_metrics_server(addr, registry).map_err(|e| {
            Failure::App(CliError::MetricsBind(std::io::Error::new(
                e.kind(),
                format!("{addr}: {e}"),
            )))
        })?;
        aa_obs::obs_info!("serve", "metrics: http://{local}/metrics");
    }

    let counters = run_fleet_serve(std::io::stdin().lock(), std::io::stdout(), &opts, registry)?;

    aa_obs::obs_info!(
        "serve",
        "fleet: workers={} received={} solved={} shed={} expired_in_queue={} parse_errors={} \
         solve_errors={} solve_panics={} internal_errors={} deadline_misses={}",
        opts.workers,
        counters.received,
        counters.solved,
        counters.shed,
        counters.expired_in_queue,
        counters.parse_errors,
        counters.solve_errors,
        counters.solve_panics,
        counters.internal_errors,
        counters.deadline_misses
    );
    if let Some(path) = counters_path {
        write_file(path, &to_json(&counters, true)?)?;
    }
    if let Some(path) = metrics_dump {
        write_file(path, &aa_obs::export::json_snapshot(registry))?;
    }
    Ok(())
}

/// Hidden `serve-worker` mode: one fleet worker process, speaking the
/// frame protocol on stdin/stdout. Spawned by the front-end; never by
/// hand.
fn cmd_serve_worker(args: &[String]) -> Result<(), Failure> {
    let defaults = WorkerOpts::default();
    let ladder = match flag_value(args, "--ladder")? {
        None => None,
        Some(raw) => Some(parse_ladder(raw).map_err(|e| Failure::Usage(format!("bad --ladder: {e}")))?),
    };
    let chaos = match flag_value(args, "--chaos-faults")? {
        None => None,
        Some(raw) => {
            let faults: Vec<(u64, ProcessFault)> = serde_json::from_str(raw)
                .map_err(|e| Failure::Usage(format!("bad --chaos-faults: {e}")))?;
            let offset: u64 = parsed_flag(args, "--chaos-offset", 0)?;
            Some((faults, offset))
        }
    };
    let opts = WorkerOpts {
        index: parsed_flag(args, "--index", defaults.index)?,
        max_streams: parsed_flag(args, "--max-streams", defaults.max_streams)?,
        breaker_threshold: parsed_flag(args, "--breaker-threshold", defaults.breaker_threshold)?,
        breaker_cooldown: parsed_flag(args, "--breaker-cooldown", defaults.breaker_cooldown)?,
        ladder,
        drain_timeout_ms: parsed_flag(args, "--drain-timeout-ms", defaults.drain_timeout_ms)?,
        trace_spans: args.iter().any(|a| a == "--obs-spans"),
        chaos,
    };
    run_worker(std::io::stdin(), std::io::stdout(), &opts)
        .map_err(|e| Failure::App(CliError::Io(e)))
}

/// Run the deterministic chaos storm from `aa-sim` against a real shard
/// pool and gate on its robustness invariants. The report prints to
/// stdout (and `--out PATH`) whether or not the gate passes, so CI can
/// always archive it.
fn cmd_chaos(args: &[String]) -> Result<(), Failure> {
    if args.iter().any(|a| a == "--fleet") {
        return cmd_fleet_chaos(args);
    }
    let defaults = ChaosConfig::default();
    let cfg = ChaosConfig {
        shards: parsed_flag(args, "--shards", defaults.shards)?,
        streams_per_shard: parsed_flag(args, "--streams-per-shard", defaults.streams_per_shard)?,
        rounds: parsed_flag(args, "--rounds", defaults.rounds)?,
        kills_per_shard: parsed_flag(args, "--kills", defaults.kills_per_shard)?,
        seed: parsed_flag(args, "--seed", defaults.seed)?,
        ..defaults
    };
    if cfg.shards == 0 || cfg.rounds == 0 || cfg.streams_per_shard == 0 {
        return Err(Failure::Usage(
            "chaos needs --shards, --rounds, and --streams-per-shard >= 1".into(),
        ));
    }
    let report = aa_sim::run_chaos(&cfg);
    let json = to_json(&report, args.iter().any(|a| a == "--pretty"))?;
    println!("{json}");
    if let Some(path) = flag_value(args, "--out")? {
        write_file(path, &json)?;
    }
    aa_obs::obs_info!(
        "chaos",
        "chaos: admitted={} completed={} ok={} crashed={} drained={} solve_panics={} \
         restarts={:?} live_shards={}/{} exactly_once={} survived={}",
        report.admitted,
        report.completed,
        report.ok,
        report.crashed,
        report.drained,
        report.solve_panics,
        report.restarts,
        report.live_shards,
        cfg.shards,
        report.exactly_once,
        report.survived
    );
    if !report.healthy() {
        return Err(Failure::App(CliError::Churn(format!(
            "chaos invariants violated: exactly_once={} survived={} live_shards={}/{} \
             restarts={:?} unrecovered_streams={}",
            report.exactly_once,
            report.survived,
            report.live_shards,
            cfg.shards,
            report.restarts,
            report.recoveries.iter().filter(|r| !r.recovered).count()
        ))));
    }
    Ok(())
}

/// `chaos --fleet`: the process-level storm against a real fleet
/// (worker processes re-execed from this binary). Gates on the fleet
/// invariants: exactly-once, scheduled restarts, rebalance back to ring
/// owners, and solve outputs bit-identical to a single-process
/// reference. The report is deterministic: same seed, same bytes.
fn cmd_fleet_chaos(args: &[String]) -> Result<(), Failure> {
    let defaults = FleetChaosConfig::default();
    let cfg = FleetChaosConfig {
        workers: parsed_flag(args, "--workers", defaults.workers)?,
        streams_per_worker: parsed_flag(args, "--streams-per-worker", defaults.streams_per_worker)?,
        rounds: parsed_flag(args, "--rounds", defaults.rounds)?,
        kills: parsed_flag(args, "--kills", defaults.kills)?,
        stalls: parsed_flag(args, "--stalls", defaults.stalls)?,
        garbage: parsed_flag(args, "--garbage", defaults.garbage)?,
        stall_millis: parsed_flag(args, "--stall-millis", defaults.stall_millis)?,
        seed: parsed_flag(args, "--seed", defaults.seed)?,
        slo_p99_micros: parsed_flag(args, "--slo-p99-ms", defaults.slo_p99_micros / 1000)?
            .saturating_mul(1000)
            .max(1),
    };
    if cfg.workers == 0 || cfg.rounds == 0 || cfg.streams_per_worker == 0 {
        return Err(Failure::Usage(
            "chaos --fleet needs --workers, --rounds, and --streams-per-worker >= 1".into(),
        ));
    }
    let report = run_fleet_chaos(&cfg)?;
    let json = to_json(&report, args.iter().any(|a| a == "--pretty"))?;
    println!("{json}");
    if let Some(path) = flag_value(args, "--out")? {
        write_file(path, &json)?;
    }
    aa_obs::obs_info!(
        "chaos",
        "fleet chaos: admitted={} completed={} ok={} internal={} restarts={:?} \
         exactly_once={} survived={} restarted_on_schedule={} rebalanced={} \
         outputs_identical={} disrupted={} unrecovered={}",
        report.admitted,
        report.completed,
        report.ok,
        report.internal,
        report.restarts,
        report.exactly_once,
        report.survived,
        report.restarted_on_schedule,
        report.rebalanced,
        report.outputs_identical,
        report.disrupted_streams,
        report.unrecovered_streams
    );
    if !report.healthy() {
        return Err(Failure::App(CliError::Churn(format!(
            "fleet chaos invariants violated: exactly_once={} survived={} \
             restarted_on_schedule={} rebalanced={} outputs_identical={} \
             all_recovered={} duplicate_seqs={:?} missing_seqs={:?}",
            report.exactly_once,
            report.survived,
            report.restarted_on_schedule,
            report.rebalanced,
            report.outputs_identical,
            report.all_recovered,
            report.duplicate_seqs,
            report.missing_seqs
        ))));
    }
    Ok(())
}

fn cmd_generate(args: &[String]) -> Result<(), Failure> {
    let defaults = GenerateOpts::default();
    let dist = match flag_value(args, "--dist")?.unwrap_or("uniform") {
        "uniform" => Distribution::Uniform,
        "normal" => Distribution::paper_normal(),
        "powerlaw" => Distribution::PowerLaw {
            alpha: parsed_flag(args, "--alpha", 2.0)?,
        },
        "discrete" => Distribution::Discrete {
            gamma: parsed_flag(args, "--gamma", 0.85)?,
            theta: parsed_flag(args, "--theta", 5.0)?,
        },
        other => return Err(Failure::Usage(format!("unknown distribution {other:?}"))),
    };
    let opts = GenerateOpts {
        servers: parsed_flag(args, "--servers", defaults.servers)?,
        beta: parsed_flag(args, "--beta", defaults.beta)?,
        capacity: parsed_flag(args, "--capacity", defaults.capacity)?,
        dist,
        seed: parsed_flag(args, "--seed", defaults.seed)?,
    };
    let doc = generate_document(&opts);
    println!("{}", to_json(&doc, args.iter().any(|a| a == "--pretty"))?);
    Ok(())
}
