//! The hidden `serve-worker` mode: one fleet worker process.
//!
//! A worker is the same binary as the front-end, re-executed with the
//! internal `serve-worker` subcommand. It speaks the [`crate::proto`]
//! frame protocol on stdin/stdout and solves with its own
//! [`TieredSolver`] and warm-state map — the process-level analogue of
//! one shard thread in [`aa_core::shard`], with the same structure:
//!
//! * a **reader thread** pulls frames off stdin, answering heartbeat
//!   pings immediately (even mid-solve) and queueing solve requests;
//! * the **solve loop** pops requests FIFO, charges per-request budgets
//!   from worker arrival time, runs every solve behind the tiered
//!   solver's `catch_unwind` boundary, and keeps per-stream
//!   [`WarmState`](aa_core::WarmState) with FIFO eviction;
//! * on stdin **EOF** the worker drains: it keeps solving what it
//!   already holds for up to `drain_timeout_ms`, answers the remainder
//!   with retryable `class:"shutdown"` errors, and exits 0.
//!
//! Chaos faults are keyed on the worker's *cumulative* solve sequence
//! number: the front-end passes `--chaos-offset` on restart so the
//! counter persists across incarnations and a scheduled storm fires
//! each fault exactly once, deterministically.

use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use aa_core::fleet::{read_frame, write_frame, MAX_FRAME_BYTES};
use aa_core::tiered::Tier;
use aa_core::{Budget, SolveError, TieredSolver, WarmState};
use aa_obs::trace::SpanGuard;
use aa_obs::Collector;
use aa_sim::ProcessFault;

use crate::proto::{
    FromWorker, MetricsSnapshot, SpanBinding, ToWorker, TraceCtx, WireSpan, WorkerResult,
};
use crate::{build_problem, ProblemFile};

/// Exit code a worker uses for self-inflicted chaos deaths, distinct
/// from clean drain (0) so the supervisor logs are unambiguous.
pub const CHAOS_EXIT_CODE: i32 = 86;

/// Configuration for [`run_worker`], parsed from the `serve-worker`
/// argv by `main.rs`.
#[derive(Debug, Clone)]
pub struct WorkerOpts {
    /// This worker's fleet index (echoed in the hello).
    pub index: usize,
    /// Warm-stream cap (FIFO eviction beyond it).
    pub max_streams: usize,
    /// Circuit breaker: consecutive tier failures before it opens.
    pub breaker_threshold: u32,
    /// Circuit breaker: requests a tripped tier sits out.
    pub breaker_cooldown: u64,
    /// Solver ladder override; `None` is the full default ladder.
    pub ladder: Option<Vec<Tier>>,
    /// Post-EOF drain budget in milliseconds.
    pub drain_timeout_ms: u64,
    /// Scheduled faults for this worker plus the cumulative solve-seq
    /// offset already consumed by earlier incarnations.
    pub chaos: Option<(Vec<(u64, ProcessFault)>, u64)>,
    /// Install a span collector and ship completed spans back in
    /// [`FromWorker::Obs`] frames (`--obs-spans`, set by a tracing
    /// front-end). Metrics federation via `Pong` is always on; only
    /// span shipping is gated here.
    pub trace_spans: bool,
}

impl Default for WorkerOpts {
    fn default() -> Self {
        WorkerOpts {
            index: 0,
            max_streams: 1024,
            breaker_threshold: aa_core::tiered::DEFAULT_BREAKER_THRESHOLD,
            breaker_cooldown: aa_core::tiered::DEFAULT_BREAKER_COOLDOWN,
            ladder: None,
            drain_timeout_ms: aa_core::fleet::DEFAULT_DRAIN_TIMEOUT_MS,
            chaos: None,
            trace_spans: false,
        }
    }
}

/// A queued solve request with its arrival time (budgets are charged
/// from arrival, so time spent queued inside the worker counts).
struct QueuedReq {
    seq: u64,
    stream: Option<u64>,
    deadline: Option<Instant>,
    trace: Option<TraceCtx>,
    problem: ProblemFile,
}

/// State shared between the reader thread and the solve loop.
struct Shared {
    queue: Mutex<VecDeque<QueuedReq>>,
    wake: Condvar,
    /// stdin reached EOF (or became unreadable): drain and exit.
    closed: AtomicBool,
    /// When EOF happened, as the drain-deadline anchor.
    eof_at: Mutex<Option<Instant>>,
    /// While stalled, the reader drops pings so the front-end sees
    /// missed heartbeats (micros since `epoch`; 0 = not stalled).
    stall_until_micros: AtomicU64,
    solves: AtomicU64,
    solve_panics: AtomicU64,
}

/// Run one worker over arbitrary streams (stdin/stdout in production,
/// in-memory pipes in tests). Returns when input is exhausted and the
/// drain is complete.
pub fn run_worker<R, W>(input: R, output: W, opts: &WorkerOpts) -> std::io::Result<()>
where
    R: Read + Send,
    W: Write + Send,
{
    let epoch = Instant::now();
    let out = Mutex::new(output);
    let shared = Shared {
        queue: Mutex::new(VecDeque::new()),
        wake: Condvar::new(),
        closed: AtomicBool::new(false),
        eof_at: Mutex::new(None),
        stall_until_micros: AtomicU64::new(0),
        solves: AtomicU64::new(0),
        solve_panics: AtomicU64::new(0),
    };

    if opts.trace_spans {
        Collector::install().set_enabled(true);
    }
    send(
        &out,
        &FromWorker::Hello {
            worker: opts.index,
            pid: std::process::id(),
            now_micros: span_clock_micros(epoch),
        },
    )?;

    std::thread::scope(|scope| -> std::io::Result<()> {
        scope.spawn(|| reader_loop(input, &out, &shared, epoch));
        solve_loop(&out, &shared, opts, epoch)
    })
}

/// The worker's span clock at call time: the collector's epoch-relative
/// clock when one is installed (the domain every shipped span timestamp
/// lives in), else microseconds since worker start. The front-end uses
/// this for cross-process clock alignment.
fn span_clock_micros(epoch: Instant) -> u64 {
    match Collector::get() {
        Some(c) => c.now_micros(),
        None => epoch.elapsed().as_micros() as u64,
    }
}

fn send<W: Write>(out: &Mutex<W>, msg: &FromWorker) -> std::io::Result<()> {
    let payload = serde_json::to_string(msg).map_err(std::io::Error::other)?;
    let mut w = out.lock().unwrap_or_else(|e| e.into_inner());
    write_frame(&mut *w, payload.as_bytes())?;
    w.flush()
}

/// Pull frames off stdin until EOF or an unrecoverable error. A frame
/// the worker cannot parse is a front-end bug; the worker treats it
/// like EOF (drain and exit) rather than guessing.
fn reader_loop<R: Read, W: Write>(
    mut input: R,
    out: &Mutex<W>,
    shared: &Shared,
    epoch: Instant,
) {
    while let Ok(Some(payload)) = read_frame(&mut input, MAX_FRAME_BYTES) {
        let parsed = std::str::from_utf8(&payload)
            .ok()
            .and_then(|s| serde_json::from_str::<ToWorker>(s).ok());
        let Some(msg) = parsed else { break };
        match msg {
            ToWorker::Ping { nonce } => {
                let stalled_until = shared.stall_until_micros.load(Ordering::Acquire);
                let now_micros = epoch.elapsed().as_micros() as u64;
                if now_micros >= stalled_until {
                    // A failed pong write means the front-end is gone;
                    // the solve loop notices via EOF shortly after.
                    // Every pong carries a full registry snapshot: the
                    // heartbeat cadence *is* the federation cadence.
                    let _ = send(
                        out,
                        &FromWorker::Pong {
                            nonce,
                            solves: shared.solves.load(Ordering::Acquire),
                            solve_panics: shared.solve_panics.load(Ordering::Acquire),
                            now_micros: span_clock_micros(epoch),
                            metrics: Some(MetricsSnapshot::from_registry(aa_obs::global())),
                        },
                    );
                }
            }
            ToWorker::Req { seq, stream, budget_ms, trace, problem } => {
                let deadline =
                    budget_ms.map(|ms| Instant::now() + Duration::from_millis(ms));
                let mut q = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
                q.push_back(QueuedReq { seq, stream, deadline, trace, problem });
                drop(q);
                shared.wake.notify_all();
            }
        }
    }
    let mut at = shared.eof_at.lock().unwrap_or_else(|e| e.into_inner());
    *at = Some(Instant::now());
    drop(at);
    shared.closed.store(true, Ordering::Release);
    shared.wake.notify_all();
}

fn solve_loop<W: Write>(
    out: &Mutex<W>,
    shared: &Shared,
    opts: &WorkerOpts,
    epoch: Instant,
) -> std::io::Result<()> {
    let solver = match &opts.ladder {
        Some(ladder) => TieredSolver::with_ladder(ladder.clone()),
        None => TieredSolver::new(),
    }
    .breaker(opts.breaker_threshold, opts.breaker_cooldown);
    let mut warm: HashMap<Option<u64>, WarmState> = HashMap::new();
    let mut warm_order: VecDeque<Option<u64>> = VecDeque::new();
    let mut solve_seq = 0u64;
    let mut obs = WorkerObsState::new(opts.trace_spans);

    loop {
        let popped = {
            let mut q = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(req) = q.pop_front() {
                    break Some(req);
                }
                if shared.closed.load(Ordering::Acquire) {
                    break None;
                }
                let (guard, _) = shared
                    .wake
                    .wait_timeout(q, Duration::from_millis(5))
                    .unwrap_or_else(|e| e.into_inner());
                q = guard;
            }
        };
        let Some(req) = popped else {
            obs.ship(out)?;
            return Ok(());
        };

        // Past the drain deadline, everything still queued answers
        // `shutdown` without solving — the front-end (or the client)
        // retries elsewhere.
        let drain_expired = shared.closed.load(Ordering::Acquire) && {
            let at = shared.eof_at.lock().unwrap_or_else(|e| e.into_inner());
            at.is_some_and(|t| {
                Instant::now() >= t + Duration::from_millis(opts.drain_timeout_ms)
            })
        };
        if drain_expired {
            send(
                out,
                &FromWorker::Resp {
                    seq: req.seq,
                    result: WorkerResult::Err {
                        class: "shutdown".to_string(),
                        error: "worker drain timeout; retry elsewhere".to_string(),
                        solve_micros: 0,
                        queue_expired: true,
                    },
                },
            )?;
            continue;
        }

        solve_seq += 1;
        if let Some((faults, offset)) = &opts.chaos {
            let cumulative = offset + solve_seq;
            if let Some(&(_, fault)) = faults.iter().find(|&&(s, _)| s == cumulative) {
                inject(fault, out, shared, epoch);
            }
        }

        let started = Instant::now();
        let result = if req.deadline.is_some_and(|d| started >= d) {
            WorkerResult::Err {
                class: "deadline".to_string(),
                error: "budget expired while queued in worker".to_string(),
                solve_micros: 0,
                queue_expired: true,
            }
        } else {
            // The guard must drop before `ship` so the solve root (and
            // the pipeline spans nested under it) are in the buffer.
            let _root = obs.enter_solve(req.trace);
            solve_one(&solver, &mut warm, &mut warm_order, opts, shared, &req, started)
        };
        obs.observe(&result);
        send(out, &FromWorker::Resp { seq: req.seq, result })?;
        obs.ship(out)?;
    }
}

/// Worker-side observability: the per-solve histogram every worker
/// federates via `Pong`, and — when `--obs-spans` is set — the span
/// shipper (cursor-tracked so [`Collector::events_since`] batches are
/// never re-sent or lost) plus trace bindings for the front-end merge.
struct WorkerObsState {
    solve_hist: aa_obs::Histogram,
    errors: aa_obs::Counter,
    dropped: aa_obs::Counter,
    collector: Option<&'static Collector>,
    cursor: u64,
    last_dropped: u64,
    bindings: Vec<SpanBinding>,
}

impl WorkerObsState {
    fn new(trace_spans: bool) -> WorkerObsState {
        let registry = aa_obs::global();
        let collector = if trace_spans {
            let c = Collector::install();
            c.set_enabled(true);
            Some(c)
        } else {
            None
        };
        WorkerObsState {
            solve_hist: registry.histogram("aa_worker_solve_micros"),
            errors: registry.counter("aa_worker_solve_errors_total"),
            dropped: registry.counter("aa_obs_spans_dropped_total"),
            // Start the cursor at the current end of the buffer: spans
            // from before this incarnation's loop are not ours to ship.
            cursor: collector.map_or(0, |c| c.events_since(u64::MAX).1),
            last_dropped: collector.map_or(0, Collector::dropped_events),
            collector,
            bindings: Vec::new(),
        }
    }

    /// Open the solve root span and bind it to the propagated
    /// front-end parent. Inert when untraced.
    fn enter_solve(&mut self, trace: Option<TraceCtx>) -> Option<SpanGuard> {
        let _ = self.collector?;
        let guard = SpanGuard::enter("fleet_solve");
        if let (Some(id), Some(ctx)) = (guard.id(), trace) {
            self.bindings.push(SpanBinding {
                span: id,
                trace_id: ctx.trace_id,
                parent_span: ctx.parent_span,
            });
        }
        Some(guard)
    }

    fn observe(&self, result: &WorkerResult) {
        match result {
            WorkerResult::Ok { solve_micros, .. } => self.solve_hist.record_micros(*solve_micros),
            WorkerResult::Err { .. } => self.errors.inc(),
        }
    }

    /// Ship everything new since the last call as one `Obs` frame (and
    /// drain the shipped events so the preallocated buffer never fills
    /// from long-lived workers). No-op when untraced or nothing is new.
    fn ship<W: Write>(&mut self, out: &Mutex<W>) -> std::io::Result<()> {
        let Some(c) = self.collector else { return Ok(()) };
        let (events, next) = c.events_since(self.cursor);
        let dropped_now = c.dropped_events();
        if events.is_empty() && self.bindings.is_empty() && dropped_now == self.last_dropped {
            return Ok(());
        }
        c.drain_through(next);
        self.cursor = next;
        self.dropped.add(dropped_now - self.last_dropped);
        self.last_dropped = dropped_now;
        let spans = events
            .into_iter()
            .map(|e| WireSpan {
                name: e.name.to_string(),
                start_micros: e.start_micros,
                duration_micros: e.duration_micros,
                thread_id: e.thread_id,
                id: e.id,
                parent_id: e.parent_id,
            })
            .collect();
        send(
            out,
            &FromWorker::Obs {
                now_micros: c.now_micros(),
                spans,
                bindings: std::mem::take(&mut self.bindings),
                dropped: dropped_now,
                metrics: Some(MetricsSnapshot::from_registry(aa_obs::global())),
            },
        )
    }
}

/// Fire one scheduled fault. `Kill` and `Garbage` do not return.
fn inject<W: Write>(fault: ProcessFault, out: &Mutex<W>, shared: &Shared, epoch: Instant) {
    match fault {
        ProcessFault::Kill => {
            // No flush, no drain: indistinguishable from SIGKILL as far
            // as the front-end can observe.
            std::process::exit(CHAOS_EXIT_CODE);
        }
        ProcessFault::Stall { millis } => {
            let until = (epoch.elapsed() + Duration::from_millis(millis)).as_micros() as u64;
            shared.stall_until_micros.store(until, Ordering::Release);
            std::thread::sleep(Duration::from_millis(millis));
        }
        ProcessFault::Garbage => {
            // A length header promising more bytes than follow: the
            // front-end's framing layer must treat this as a crash.
            let mut w = out.lock().unwrap_or_else(|e| e.into_inner());
            let _ = w.write_all(&64u32.to_be_bytes());
            let _ = w.write_all(b"not json");
            let _ = w.flush();
            drop(w);
            std::process::exit(CHAOS_EXIT_CODE);
        }
    }
}

fn solve_one(
    solver: &TieredSolver,
    warm: &mut HashMap<Option<u64>, WarmState>,
    warm_order: &mut VecDeque<Option<u64>>,
    opts: &WorkerOpts,
    shared: &Shared,
    req: &QueuedReq,
    started: Instant,
) -> WorkerResult {
    let problem = match build_problem(&req.problem) {
        Ok(p) => p,
        Err(e) => {
            return WorkerResult::Err {
                class: "problem".to_string(),
                error: e.to_string(),
                solve_micros: started.elapsed().as_micros() as u64,
                queue_expired: false,
            }
        }
    };
    let budget = match req.deadline {
        Some(d) => Budget::with_deadline(d.saturating_duration_since(started)),
        None => Budget::unlimited(),
    };
    if warm.len() >= opts.max_streams.max(1) && !warm.contains_key(&req.stream) {
        if let Some(old) = warm_order.pop_front() {
            warm.remove(&old);
        }
    }
    let state = warm.entry(req.stream).or_insert_with(|| {
        warm_order.push_back(req.stream);
        WarmState::new()
    });
    match solver.try_solve_within_caught(&problem, &budget, Some(state)) {
        Ok(solved) => {
            shared.solves.fetch_add(1, Ordering::AcqRel);
            WorkerResult::Ok {
                tier: solved.degradation.tier.name().to_string(),
                degraded: solved.degradation.degraded,
                utility: solved.utility,
                server: solved.assignment.server,
                allocation: solved.assignment.amount,
                solve_micros: started.elapsed().as_micros() as u64,
            }
        }
        Err(err) => {
            let class = match &err {
                SolveError::Panicked(_) => {
                    shared.solve_panics.fetch_add(1, Ordering::AcqRel);
                    "solve_panic"
                }
                SolveError::DeadlineExceeded | SolveError::Cancelled => "deadline",
                _ => "solve",
            };
            WorkerResult::Err {
                class: class.to_string(),
                error: err.to_string(),
                solve_micros: started.elapsed().as_micros() as u64,
                queue_expired: false,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aa_utility::UtilitySpec;

    fn problem_file(threads: usize) -> ProblemFile {
        ProblemFile {
            servers: 2,
            capacity: 8.0,
            threads: (0..threads)
                .map(|i| UtilitySpec::Power {
                    scale: 1.0 + i as f64 * 0.25,
                    beta: 0.5,
                    cap: 8.0,
                })
                .collect(),
        }
    }

    fn frame(msg: &ToWorker) -> Vec<u8> {
        let mut buf = Vec::new();
        write_frame(&mut buf, serde_json::to_string(msg).unwrap().as_bytes()).unwrap();
        buf
    }

    fn run(input: Vec<u8>, opts: &WorkerOpts) -> Vec<FromWorker> {
        let mut output = Vec::new();
        run_worker(&input[..], &mut output, opts).unwrap();
        let mut cursor = &output[..];
        let mut msgs = Vec::new();
        while let Some(payload) = read_frame(&mut cursor, MAX_FRAME_BYTES).unwrap() {
            msgs.push(
                serde_json::from_str(std::str::from_utf8(&payload).unwrap()).unwrap(),
            );
        }
        msgs
    }

    #[test]
    fn worker_hellos_solves_and_answers_pings() {
        let mut input = Vec::new();
        input.extend(frame(&ToWorker::Req {
            seq: 0,
            stream: Some(7),
            budget_ms: None,
            trace: None,
            problem: problem_file(6),
        }));
        input.extend(frame(&ToWorker::Ping { nonce: 99 }));
        input.extend(frame(&ToWorker::Req {
            seq: 1,
            stream: Some(7),
            budget_ms: None,
            trace: None,
            problem: problem_file(6),
        }));
        let msgs = run(input, &WorkerOpts::default());
        assert!(
            matches!(msgs[0], FromWorker::Hello { worker: 0, .. }),
            "first frame must be the hello: {msgs:?}"
        );
        let mut utilities = Vec::new();
        let mut ponged = false;
        for m in &msgs[1..] {
            match m {
                FromWorker::Pong { nonce, .. } => {
                    assert_eq!(*nonce, 99);
                    ponged = true;
                }
                FromWorker::Resp { result: WorkerResult::Ok { utility, .. }, .. } => {
                    utilities.push(utility.to_bits())
                }
                other => panic!("unexpected frame: {other:?}"),
            }
        }
        assert!(ponged, "ping was dropped: {msgs:?}");
        assert_eq!(utilities.len(), 2);
        // Warm (second) solve must be bit-identical to the cold one.
        assert_eq!(utilities[0], utilities[1]);
    }

    #[test]
    fn expired_budget_answers_deadline_without_solving() {
        let mut input = Vec::new();
        input.extend(frame(&ToWorker::Req {
            seq: 5,
            stream: None,
            budget_ms: Some(0),
            trace: None,
            problem: problem_file(2000),
        }));
        let msgs = run(input, &WorkerOpts::default());
        let resp = msgs
            .iter()
            .find_map(|m| match m {
                FromWorker::Resp { seq: 5, result } => Some(result.clone()),
                _ => None,
            })
            .expect("request answered");
        match resp {
            WorkerResult::Err { class, queue_expired, .. } => {
                assert_eq!(class, "deadline");
                assert!(queue_expired);
            }
            other => panic!("expected deadline error, got {other:?}"),
        }
    }

    #[test]
    fn invalid_problem_is_typed_not_fatal() {
        let mut input = Vec::new();
        input.extend(frame(&ToWorker::Req {
            seq: 0,
            stream: None,
            budget_ms: None,
            trace: None,
            problem: ProblemFile { servers: 0, capacity: 4.0, threads: vec![] },
        }));
        input.extend(frame(&ToWorker::Req {
            seq: 1,
            stream: None,
            budget_ms: None,
            trace: None,
            problem: problem_file(4),
        }));
        let msgs = run(input, &WorkerOpts::default());
        let classes: Vec<String> = msgs
            .iter()
            .filter_map(|m| match m {
                FromWorker::Resp { result: WorkerResult::Err { class, .. }, .. } => {
                    Some(class.clone())
                }
                _ => None,
            })
            .collect();
        assert_eq!(classes, vec!["problem".to_string()]);
        assert!(msgs.iter().any(|m| matches!(
            m,
            FromWorker::Resp { seq: 1, result: WorkerResult::Ok { .. } }
        )));
    }

    #[test]
    fn drain_timeout_answers_queued_requests_with_shutdown() {
        // Zero drain budget, and a scheduled stall on the first solve so
        // the reader is guaranteed to reach EOF while the solve loop is
        // paused: everything popped after the stall is past the drain
        // deadline and answers `shutdown`.
        let mut input = Vec::new();
        for seq in 0..4 {
            input.extend(frame(&ToWorker::Req {
                seq,
                stream: Some(1),
                budget_ms: None,
                trace: None,
                problem: problem_file(6),
            }));
        }
        let opts = WorkerOpts {
            drain_timeout_ms: 0,
            chaos: Some((vec![(1, ProcessFault::Stall { millis: 150 })], 0)),
            ..WorkerOpts::default()
        };
        let msgs = run(input, &opts);
        let mut answered = 0u64;
        let mut shutdowns = 0u64;
        for m in &msgs {
            if let FromWorker::Resp { result, .. } = m {
                answered += 1;
                if let WorkerResult::Err { class, .. } = result {
                    if class == "shutdown" {
                        shutdowns += 1;
                    }
                }
            }
        }
        assert_eq!(answered, 4, "every queued request must be answered: {msgs:?}");
        assert!(shutdowns >= 1, "drain produced no shutdown answers: {msgs:?}");
    }

    #[test]
    fn stall_fault_drops_pings_until_it_passes() {
        let mut input = Vec::new();
        input.extend(frame(&ToWorker::Req {
            seq: 0,
            stream: None,
            budget_ms: None,
            trace: None,
            problem: problem_file(4),
        }));
        let opts = WorkerOpts {
            chaos: Some((vec![(1, ProcessFault::Stall { millis: 30 })], 0)),
            ..WorkerOpts::default()
        };
        let msgs = run(input, &opts);
        // The solve still answers after the stall.
        assert!(msgs.iter().any(|m| matches!(
            m,
            FromWorker::Resp { seq: 0, result: WorkerResult::Ok { .. } }
        )));
    }

    #[test]
    fn obs_spans_ship_with_bindings_and_federated_metrics() {
        let mut input = Vec::new();
        input.extend(frame(&ToWorker::Req {
            seq: 0,
            stream: Some(1),
            budget_ms: None,
            trace: Some(TraceCtx { trace_id: 11, parent_span: 400 }),
            problem: problem_file(6),
        }));
        let opts = WorkerOpts { trace_spans: true, ..WorkerOpts::default() };
        let msgs = run(input, &opts);
        match &msgs[0] {
            FromWorker::Hello { worker: 0, .. } => {}
            other => panic!("first frame must be the hello: {other:?}"),
        }
        let mut solve_roots = Vec::new();
        let mut bound = false;
        for m in &msgs {
            if let FromWorker::Obs { spans, bindings, metrics, .. } = m {
                solve_roots.extend(
                    spans.iter().filter(|s| s.name == "fleet_solve").map(|s| s.id),
                );
                for b in bindings {
                    if b.trace_id == 11 && b.parent_span == 400 {
                        bound = true;
                    }
                }
                let snap = metrics.as_ref().expect("obs frames carry a snapshot");
                assert!(
                    snap.histograms.iter().any(|h| h.key == "aa_worker_solve_micros"),
                    "solve histogram federates: {snap:?}"
                );
            }
        }
        assert!(!solve_roots.is_empty(), "solve root span was shipped: {msgs:?}");
        assert!(bound, "binding links the solve root to the front-end parent: {msgs:?}");
        assert!(msgs.iter().any(|m| matches!(
            m,
            FromWorker::Resp { seq: 0, result: WorkerResult::Ok { .. } }
        )));
    }

    #[test]
    fn chaos_offset_shifts_the_fault_schedule() {
        // Fault at cumulative seq 3 with offset 2 fires on this
        // incarnation's *first* solve; a stall (not kill) keeps the
        // test process alive while proving the trigger fired.
        let mut input = Vec::new();
        input.extend(frame(&ToWorker::Req {
            seq: 0,
            stream: None,
            budget_ms: None,
            trace: None,
            problem: problem_file(4),
        }));
        let opts = WorkerOpts {
            chaos: Some((vec![(3, ProcessFault::Stall { millis: 20 })], 2)),
            ..WorkerOpts::default()
        };
        let started = Instant::now();
        let msgs = run(input, &opts);
        assert!(started.elapsed() >= Duration::from_millis(20), "stall never fired");
        assert!(msgs
            .iter()
            .any(|m| matches!(m, FromWorker::Resp { seq: 0, .. })));
    }
}
