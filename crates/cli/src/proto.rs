//! Wire protocol between the fleet front-end and its worker processes.
//!
//! Every message is one frame as defined by [`aa_core::fleet`]: a
//! big-endian `u32` payload length, the JSON payload, and a `\n`
//! trailer. The front-end writes [`ToWorker`] frames on the worker's
//! stdin; the worker writes [`FromWorker`] frames on its stdout. stderr
//! is left alone (inherited) so worker panics stay visible.
//!
//! The protocol is strictly request/response plus heartbeats:
//!
//! * `Hello` — first frame a worker emits, carrying its index and pid;
//!   the front-end treats a worker as up only after its hello.
//! * `Ping`/`Pong` — heartbeats; a worker answers pings from a reader
//!   thread even mid-solve, so only a wedged or dead process misses.
//! * `Req`/`Resp` — one solve; `seq` is the front-end's pending-map key
//!   and must be echoed verbatim.
//!
//! Anything else a worker writes — truncated frames, bad trailers,
//! unparseable JSON — is a protocol violation and the front-end treats
//! the worker exactly as if it had crashed.

use serde::{Deserialize, Serialize};

use crate::ProblemFile;

/// Distributed trace context carried on a [`ToWorker::Req`]: the
/// front-end's request trace id and the span id the worker should root
/// its pipeline spans under. Span ids stay below 2⁵³ (the wire is JSON
/// `f64`), which the front-end's lane remap guarantees.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TraceCtx {
    /// Front-end trace id for this request (never 0).
    pub trace_id: u64,
    /// Front-end span id of the request span; the worker's solve root
    /// span binds to it as a parent.
    pub parent_span: u64,
}

/// Frames the front-end sends to a worker (on its stdin).
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(tag = "type", rename_all = "snake_case")]
pub enum ToWorker {
    /// Solve one problem.
    Req {
        /// Front-end pending-map key; echoed in the response.
        seq: u64,
        /// Stream key for warm-state affinity, if any.
        stream: Option<u64>,
        /// Per-request solve budget in milliseconds, measured from
        /// worker arrival, if any.
        budget_ms: Option<u64>,
        /// Trace context, when the front-end is tracing.
        trace: Option<TraceCtx>,
        /// The problem spec, in the same schema as the `solve` command.
        problem: ProblemFile,
    },
    /// Heartbeat probe.
    Ping {
        /// Echoed in the pong so stale pongs are discarded.
        nonce: u64,
    },
}

/// Frames a worker sends to the front-end (on its stdout).
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(tag = "type", rename_all = "snake_case")]
pub enum FromWorker {
    /// First frame after startup; the worker is routable from here on.
    Hello {
        /// The worker's fleet index (echo of `--index`).
        worker: usize,
        /// The worker's OS process id, for supervision logs.
        pid: u32,
        /// The worker's span clock at send time (µs since its collector
        /// epoch; 0 when no collector is installed). The front-end
        /// subtracts this from its own clock at receipt to get the
        /// per-incarnation alignment offset for merged traces.
        now_micros: u64,
    },
    /// Heartbeat answer.
    Pong {
        /// The probe's nonce.
        nonce: u64,
        /// Cumulative solves this incarnation, for metrics.
        solves: u64,
        /// Cumulative contained solve panics this incarnation.
        solve_panics: u64,
        /// Span clock at send time, refreshing the alignment offset.
        now_micros: u64,
        /// Full registry snapshot for federation (every pong — full
        /// snapshots, not deltas, so a dropped pong costs staleness of
        /// one heartbeat, never correctness).
        metrics: Option<MetricsSnapshot>,
    },
    /// Answer to a [`ToWorker::Req`].
    Resp {
        /// The request's `seq`, echoed.
        seq: u64,
        /// What happened.
        result: WorkerResult,
    },
    /// Low-rate observability shipment: completed spans since the last
    /// `Obs` frame (cursor-tracked, so never re-sent and never lost)
    /// plus trace bindings linking worker solve roots to front-end
    /// request spans. Only emitted when the worker was started with
    /// `--obs-spans`.
    Obs {
        /// Span clock at send time (clock alignment, as in `Pong`).
        now_micros: u64,
        /// Completed spans, worker-local ids, worker clock domain.
        spans: Vec<WireSpan>,
        /// Solve-root → front-end parent links for the spans above.
        bindings: Vec<SpanBinding>,
        /// Cumulative spans dropped by the worker's full buffer.
        dropped: u64,
        /// Registry snapshot, same semantics as in `Pong`.
        metrics: Option<MetricsSnapshot>,
    },
}

/// One completed span on the wire (an owned [`aa_obs::SpanEvent`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WireSpan {
    /// Span name.
    pub name: String,
    /// Start, µs since the worker's collector epoch.
    pub start_micros: u64,
    /// Duration, µs.
    pub duration_micros: u64,
    /// Worker-local thread id.
    pub thread_id: u64,
    /// Worker-local span id (never 0, always < 2⁵³).
    pub id: u64,
    /// Worker-local parent id; 0 for roots.
    pub parent_id: u64,
}

/// Links one worker-local solve-root span to the front-end request
/// span it belongs under.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SpanBinding {
    /// Worker-local id of the solve root span.
    pub span: u64,
    /// The request's trace id (echo of [`TraceCtx::trace_id`]).
    pub trace_id: u64,
    /// Front-end span id to parent under (echo of
    /// [`TraceCtx::parent_span`]).
    pub parent_span: u64,
}

/// A full worker registry snapshot for metrics federation: flat export
/// keys and values, histograms as raw log-linear bucket parts
/// (boundaries are a protocol constant shared by both sides).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Counter `(export key, cumulative value)` pairs.
    pub counters: Vec<(String, u64)>,
    /// Gauge `(export key, last value)` pairs.
    pub gauges: Vec<(String, f64)>,
    /// Histogram parts.
    pub histograms: Vec<WireHistogram>,
}

/// One histogram inside a [`MetricsSnapshot`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WireHistogram {
    /// The export key (`name` or `name{k="v"}`).
    pub key: String,
    /// Per-bucket counts — `aa_obs::metrics::NUM_BOUNDARIES + 1`
    /// entries; receivers discard snapshots with any other length.
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observations, µs.
    pub sum_micros: u64,
    /// Largest observation, µs.
    pub max_micros: u64,
}

impl MetricsSnapshot {
    /// Capture `registry`'s local entries as a wire snapshot.
    #[must_use]
    pub fn from_registry(registry: &aa_obs::Registry) -> MetricsSnapshot {
        let fed = registry.to_federated();
        MetricsSnapshot {
            counters: fed.counters,
            gauges: fed.gauges,
            histograms: fed
                .histograms
                .into_iter()
                .map(|h| WireHistogram {
                    key: h.key,
                    buckets: h.buckets,
                    count: h.count,
                    sum_micros: h.sum_micros,
                    max_micros: h.max_micros,
                })
                .collect(),
        }
    }

    /// Convert into the `aa-obs` federation type for merging.
    #[must_use]
    pub fn into_federated(self) -> aa_obs::FederatedSnapshot {
        aa_obs::FederatedSnapshot {
            counters: self.counters,
            gauges: self.gauges,
            histograms: self
                .histograms
                .into_iter()
                .map(|h| aa_obs::FederatedHistogram {
                    key: h.key,
                    buckets: h.buckets,
                    count: h.count,
                    sum_micros: h.sum_micros,
                    max_micros: h.max_micros,
                })
                .collect(),
        }
    }
}

/// The outcome of one worker-side solve.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum WorkerResult {
    /// Solved.
    Ok {
        /// Ladder tier that produced the answer.
        tier: String,
        /// Whether the answer came from a degraded (non-top) tier.
        degraded: bool,
        /// Total utility of the assignment.
        utility: f64,
        /// Thread → server assignment.
        server: Vec<usize>,
        /// Thread → resource allocation.
        allocation: Vec<f64>,
        /// Solve latency in microseconds.
        solve_micros: u64,
    },
    /// Not solved; `class` matches the serve tier's error classes
    /// (`deadline`, `solve`, `internal`, `shutdown`).
    Err {
        /// Error class, for the client's retry decision.
        class: String,
        /// Human-readable detail.
        error: String,
        /// Time spent before failing, in microseconds.
        solve_micros: u64,
        /// True when the budget expired while queued in the worker
        /// (never started solving).
        queue_expired: bool,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use aa_utility::UtilitySpec;

    fn round_trip_to(msg: &ToWorker) -> ToWorker {
        serde_json::from_str(&serde_json::to_string(msg).unwrap()).unwrap()
    }

    fn round_trip_from(msg: &FromWorker) -> FromWorker {
        serde_json::from_str(&serde_json::to_string(msg).unwrap()).unwrap()
    }

    #[test]
    fn requests_round_trip_with_and_without_options() {
        let problem = ProblemFile {
            servers: 2,
            capacity: 8.0,
            threads: vec![
                UtilitySpec::Power { scale: 1.0, beta: 0.5, cap: 8.0 },
                UtilitySpec::Log { scale: 2.0, rate: 0.9, cap: 8.0 },
            ],
        };
        let full = ToWorker::Req {
            seq: 42,
            stream: Some(7),
            budget_ms: Some(100),
            trace: Some(TraceCtx { trace_id: 9, parent_span: 31 }),
            problem: problem.clone(),
        };
        match round_trip_to(&full) {
            ToWorker::Req { seq, stream, budget_ms, trace, problem: p } => {
                assert_eq!((seq, stream, budget_ms), (42, Some(7), Some(100)));
                let trace = trace.expect("trace ctx survives");
                assert_eq!((trace.trace_id, trace.parent_span), (9, 31));
                assert_eq!(p.servers, problem.servers);
                assert_eq!(p.threads.len(), problem.threads.len());
            }
            other => panic!("wrong variant: {other:?}"),
        }
        let bare =
            ToWorker::Req { seq: 0, stream: None, budget_ms: None, trace: None, problem };
        match round_trip_to(&bare) {
            ToWorker::Req { stream, budget_ms, trace, .. } => {
                assert_eq!((stream, budget_ms), (None, None));
                assert!(trace.is_none());
            }
            other => panic!("wrong variant: {other:?}"),
        }
        match round_trip_to(&ToWorker::Ping { nonce: 9 }) {
            ToWorker::Ping { nonce } => assert_eq!(nonce, 9),
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn responses_round_trip_bit_exactly() {
        let ok = FromWorker::Resp {
            seq: 3,
            result: WorkerResult::Ok {
                tier: "algo2".into(),
                degraded: false,
                utility: 12.345678901234567,
                server: vec![0, 1, 0],
                allocation: vec![4.0, 8.0, 4.0],
                solve_micros: 57,
            },
        };
        match round_trip_from(&ok) {
            FromWorker::Resp { seq: 3, result: WorkerResult::Ok { utility, .. } } => {
                // f64 must survive the JSON hop bit-exactly: the fleet's
                // bit-identity acceptance depends on it.
                assert_eq!(utility.to_bits(), 12.345678901234567f64.to_bits());
            }
            other => panic!("wrong variant: {other:?}"),
        }
        let err = FromWorker::Resp {
            seq: 4,
            result: WorkerResult::Err {
                class: "deadline".into(),
                error: "budget expired in queue".into(),
                solve_micros: 0,
                queue_expired: true,
            },
        };
        match round_trip_from(&err) {
            FromWorker::Resp { result: WorkerResult::Err { class, queue_expired, .. }, .. } => {
                assert_eq!(class, "deadline");
                assert!(queue_expired);
            }
            other => panic!("wrong variant: {other:?}"),
        }
        match round_trip_from(&FromWorker::Hello { worker: 2, pid: 4242, now_micros: 777 }) {
            FromWorker::Hello { worker, pid, now_micros } => {
                assert_eq!((worker, pid, now_micros), (2, 4242, 777));
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn obs_frames_round_trip_spans_bindings_and_metrics() {
        let snap = MetricsSnapshot {
            counters: vec![("aa_worker_solves_total".into(), 12)],
            gauges: vec![("aa_queue_depth".into(), 1.5)],
            histograms: vec![WireHistogram {
                key: "aa_worker_solve_micros".into(),
                buckets: vec![0; aa_obs::metrics::NUM_BOUNDARIES + 1],
                count: 0,
                sum_micros: 0,
                max_micros: 0,
            }],
        };
        let obs = FromWorker::Obs {
            now_micros: 1_000_000,
            spans: vec![WireSpan {
                name: "fleet_solve".into(),
                start_micros: 500,
                duration_micros: 120,
                thread_id: 3,
                id: 41,
                parent_id: 0,
            }],
            bindings: vec![SpanBinding { span: 41, trace_id: 9, parent_span: 31 }],
            dropped: 2,
            metrics: Some(snap),
        };
        match round_trip_from(&obs) {
            FromWorker::Obs { now_micros, spans, bindings, dropped, metrics } => {
                assert_eq!(now_micros, 1_000_000);
                assert_eq!(spans.len(), 1);
                assert_eq!(spans[0].name, "fleet_solve");
                assert_eq!((spans[0].id, spans[0].parent_id), (41, 0));
                assert_eq!(bindings[0].parent_span, 31);
                assert_eq!(dropped, 2);
                let m = metrics.expect("metrics survive");
                assert_eq!(m.counters, vec![("aa_worker_solves_total".to_string(), 12)]);
                assert_eq!(m.gauges[0].1, 1.5);
                assert_eq!(m.histograms[0].buckets.len(), aa_obs::metrics::NUM_BOUNDARIES + 1);
            }
            other => panic!("wrong variant: {other:?}"),
        }
        // A pong carrying a federation snapshot round-trips too; one
        // without stays None (the single-process tier never federates).
        let pong = FromWorker::Pong {
            nonce: 5,
            solves: 3,
            solve_panics: 0,
            now_micros: 42,
            metrics: None,
        };
        match round_trip_from(&pong) {
            FromWorker::Pong { nonce, now_micros, metrics, .. } => {
                assert_eq!((nonce, now_micros), (5, 42));
                assert!(metrics.is_none());
            }
            other => panic!("wrong variant: {other:?}"),
        }
        let fed = MetricsSnapshot::from_registry(&{
            let r = aa_obs::Registry::new();
            r.counter("aa_t_total").add(4);
            r.histogram("aa_h_micros").record_micros(10);
            r
        });
        assert_eq!(fed.counters, vec![("aa_t_total".to_string(), 4)]);
        let back = fed.into_federated();
        assert_eq!(back.histograms[0].count, 1);
    }
}
