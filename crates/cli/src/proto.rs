//! Wire protocol between the fleet front-end and its worker processes.
//!
//! Every message is one frame as defined by [`aa_core::fleet`]: a
//! big-endian `u32` payload length, the JSON payload, and a `\n`
//! trailer. The front-end writes [`ToWorker`] frames on the worker's
//! stdin; the worker writes [`FromWorker`] frames on its stdout. stderr
//! is left alone (inherited) so worker panics stay visible.
//!
//! The protocol is strictly request/response plus heartbeats:
//!
//! * `Hello` — first frame a worker emits, carrying its index and pid;
//!   the front-end treats a worker as up only after its hello.
//! * `Ping`/`Pong` — heartbeats; a worker answers pings from a reader
//!   thread even mid-solve, so only a wedged or dead process misses.
//! * `Req`/`Resp` — one solve; `seq` is the front-end's pending-map key
//!   and must be echoed verbatim.
//!
//! Anything else a worker writes — truncated frames, bad trailers,
//! unparseable JSON — is a protocol violation and the front-end treats
//! the worker exactly as if it had crashed.

use serde::{Deserialize, Serialize};

use crate::ProblemFile;

/// Frames the front-end sends to a worker (on its stdin).
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(tag = "type", rename_all = "snake_case")]
pub enum ToWorker {
    /// Solve one problem.
    Req {
        /// Front-end pending-map key; echoed in the response.
        seq: u64,
        /// Stream key for warm-state affinity, if any.
        stream: Option<u64>,
        /// Per-request solve budget in milliseconds, measured from
        /// worker arrival, if any.
        budget_ms: Option<u64>,
        /// The problem spec, in the same schema as the `solve` command.
        problem: ProblemFile,
    },
    /// Heartbeat probe.
    Ping {
        /// Echoed in the pong so stale pongs are discarded.
        nonce: u64,
    },
}

/// Frames a worker sends to the front-end (on its stdout).
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(tag = "type", rename_all = "snake_case")]
pub enum FromWorker {
    /// First frame after startup; the worker is routable from here on.
    Hello {
        /// The worker's fleet index (echo of `--index`).
        worker: usize,
        /// The worker's OS process id, for supervision logs.
        pid: u32,
    },
    /// Heartbeat answer.
    Pong {
        /// The probe's nonce.
        nonce: u64,
        /// Cumulative solves this incarnation, for metrics.
        solves: u64,
        /// Cumulative contained solve panics this incarnation.
        solve_panics: u64,
    },
    /// Answer to a [`ToWorker::Req`].
    Resp {
        /// The request's `seq`, echoed.
        seq: u64,
        /// What happened.
        result: WorkerResult,
    },
}

/// The outcome of one worker-side solve.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum WorkerResult {
    /// Solved.
    Ok {
        /// Ladder tier that produced the answer.
        tier: String,
        /// Whether the answer came from a degraded (non-top) tier.
        degraded: bool,
        /// Total utility of the assignment.
        utility: f64,
        /// Thread → server assignment.
        server: Vec<usize>,
        /// Thread → resource allocation.
        allocation: Vec<f64>,
        /// Solve latency in microseconds.
        solve_micros: u64,
    },
    /// Not solved; `class` matches the serve tier's error classes
    /// (`deadline`, `solve`, `internal`, `shutdown`).
    Err {
        /// Error class, for the client's retry decision.
        class: String,
        /// Human-readable detail.
        error: String,
        /// Time spent before failing, in microseconds.
        solve_micros: u64,
        /// True when the budget expired while queued in the worker
        /// (never started solving).
        queue_expired: bool,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use aa_utility::UtilitySpec;

    fn round_trip_to(msg: &ToWorker) -> ToWorker {
        serde_json::from_str(&serde_json::to_string(msg).unwrap()).unwrap()
    }

    fn round_trip_from(msg: &FromWorker) -> FromWorker {
        serde_json::from_str(&serde_json::to_string(msg).unwrap()).unwrap()
    }

    #[test]
    fn requests_round_trip_with_and_without_options() {
        let problem = ProblemFile {
            servers: 2,
            capacity: 8.0,
            threads: vec![
                UtilitySpec::Power { scale: 1.0, beta: 0.5, cap: 8.0 },
                UtilitySpec::Log { scale: 2.0, rate: 0.9, cap: 8.0 },
            ],
        };
        let full = ToWorker::Req {
            seq: 42,
            stream: Some(7),
            budget_ms: Some(100),
            problem: problem.clone(),
        };
        match round_trip_to(&full) {
            ToWorker::Req { seq, stream, budget_ms, problem: p } => {
                assert_eq!((seq, stream, budget_ms), (42, Some(7), Some(100)));
                assert_eq!(p.servers, problem.servers);
                assert_eq!(p.threads.len(), problem.threads.len());
            }
            other => panic!("wrong variant: {other:?}"),
        }
        let bare = ToWorker::Req { seq: 0, stream: None, budget_ms: None, problem };
        match round_trip_to(&bare) {
            ToWorker::Req { stream, budget_ms, .. } => {
                assert_eq!((stream, budget_ms), (None, None));
            }
            other => panic!("wrong variant: {other:?}"),
        }
        match round_trip_to(&ToWorker::Ping { nonce: 9 }) {
            ToWorker::Ping { nonce } => assert_eq!(nonce, 9),
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn responses_round_trip_bit_exactly() {
        let ok = FromWorker::Resp {
            seq: 3,
            result: WorkerResult::Ok {
                tier: "algo2".into(),
                degraded: false,
                utility: 12.345678901234567,
                server: vec![0, 1, 0],
                allocation: vec![4.0, 8.0, 4.0],
                solve_micros: 57,
            },
        };
        match round_trip_from(&ok) {
            FromWorker::Resp { seq: 3, result: WorkerResult::Ok { utility, .. } } => {
                // f64 must survive the JSON hop bit-exactly: the fleet's
                // bit-identity acceptance depends on it.
                assert_eq!(utility.to_bits(), 12.345678901234567f64.to_bits());
            }
            other => panic!("wrong variant: {other:?}"),
        }
        let err = FromWorker::Resp {
            seq: 4,
            result: WorkerResult::Err {
                class: "deadline".into(),
                error: "budget expired in queue".into(),
                solve_micros: 0,
                queue_expired: true,
            },
        };
        match round_trip_from(&err) {
            FromWorker::Resp { result: WorkerResult::Err { class, queue_expired, .. }, .. } => {
                assert_eq!(class, "deadline");
                assert!(queue_expired);
            }
            other => panic!("wrong variant: {other:?}"),
        }
        match round_trip_from(&FromWorker::Hello { worker: 2, pid: 4242 }) {
            FromWorker::Hello { worker, pid } => assert_eq!((worker, pid), (2, 4242)),
            other => panic!("wrong variant: {other:?}"),
        }
    }
}
