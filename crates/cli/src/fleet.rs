//! `aa-solve serve --fleet N` — a multi-process request loop: worker
//! *processes*, a routing front-end, and rebalance on membership change.
//!
//! The single-process [`crate::serve`] loop isolates solve crashes with
//! shard *threads*; this module isolates them with whole processes. The
//! front-end re-execs its own binary N times in the hidden
//! `serve-worker` mode ([`crate::worker`]) and speaks the
//! [`crate::proto`] frame protocol over each worker's stdin/stdout
//! pipes. The client-facing contract is unchanged — LDJSON requests in,
//! LDJSON responses out, same error classes — with three extra fields on
//! `status:"ok"` lines (`worker`, `attempts`, `solve_micros`) so clients
//! and the chaos harness can see routing and retry behaviour.
//!
//! # Event loop
//!
//! One thread owns all fleet state (no locks around routing decisions):
//!
//! * the **stdin reader** (the calling thread) parses request lines and
//!   forwards admissions and control lines as events;
//! * per worker, a **pipe reader thread** decodes frames into events; a
//!   truncated, oversized, or unparseable frame is a protocol violation
//!   and the worker is treated exactly as if it had crashed;
//! * the **event loop** routes stream keys over
//!   [`FleetRouter`]'s consistent-hash ring, tracks every admitted
//!   request in a [`PendingMap`] (exactly-once: the first completion per
//!   seq wins, later ones are dropped), heartbeats workers, and
//!   supervises: a dead worker's in-flight requests are pulled back and
//!   retried on survivors with exponential backoff and seeded jitter,
//!   its ring ranges reroute, and the worker respawns with backoff.
//!   Requests that exhaust `--max-retries` dispatches are answered with
//!   a retryable `class:"internal"` error. After a restart the ring
//!   rebalances back lazily: the next request per stream routes to the
//!   restored owner, parking behind any survivor still working that
//!   stream (drain → handoff → resume; never two workers on one stream).
//!   Warm state is not migrated — the restored owner rebuilds it
//!   transparently on the stream's next request.
//!
//! # Membership control
//!
//! A control line `{"control":"resize","fleet":N}` resizes the fleet in
//! place. Growing spawns new workers; shrinking marks removed workers
//! draining (they finish in-flight work, then their stdin closes and
//! they exit cleanly) and hands their ring ranges to the survivors.
//!
//! # Shutdown
//!
//! On stdin EOF the front-end stops admitting and waits up to
//! `--drain-timeout-ms` for pending requests; whatever remains is
//! answered with a retryable `class:"shutdown"` error. Workers then see
//! their own stdin EOF and drain the same way.
//!
//! # Chaos
//!
//! [`run_fleet_chaos`] drives a real fleet (worker processes re-execed
//! from the current binary) through a seeded
//! [`ProcessChaosPlan`] storm — kills, heartbeat stalls, garbage frames
//! — keyed on per-worker cumulative solve sequence numbers so the same
//! seed replays the same storm. The verdict
//! ([`FleetChaosReport`]) contains only schedule- and invariant-derived
//! fields, so two runs with the same seed serialize byte-identically.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::io::{BufRead, BufReader, Read, Write};
use std::path::PathBuf;
use std::process::{Child, ChildStdout, Command, Stdio};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use aa_core::fleet::{
    read_frame, write_frame, Backoff, FleetRouter, ParkedQueues, PendingMap, RouteDecision,
    DEFAULT_DRAIN_TIMEOUT_MS, DEFAULT_HEARTBEAT_INTERVAL_MS, DEFAULT_HEARTBEAT_MISS_LIMIT,
    DEFAULT_MAX_RETRIES, DEFAULT_RETRY_BACKOFF_BASE_MS, DEFAULT_RETRY_BACKOFF_MAX_MS,
    DEFAULT_SLO_P99_MS, MAX_FRAME_BYTES,
};
use aa_obs::export::{chrome_trace_merged, LaneEvent, TraceLane};
use aa_core::ring::{splitmix64, Ring};
use aa_core::tiered::Tier;
use aa_core::{Budget, TieredSolver};
use aa_sim::{
    analyze_fleet, FleetChaosConfig, FleetChaosReport, FleetObservation, FleetObservations,
    ProcessChaosPlan,
};
use aa_utility::UtilitySpec;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::proto::{FromWorker, SpanBinding, ToWorker, TraceCtx, WireSpan, WorkerResult};
use crate::serve::{
    estimated_drain_ms, read_bounded_line, respond, LineRead, ServeCounters, ServeMetrics,
    ServeRequest, ServeResponse,
};
use crate::{build_problem, CliError, ProblemFile};

/// Default restart budget per worker before it is retired.
pub const DEFAULT_MAX_RESTARTS: u64 = 8;

/// Parse a `--ladder` flag value: comma-separated [`Tier`] names in
/// descending order, e.g. `"exact-bb,algo2,uu"`.
pub fn parse_ladder(s: &str) -> Result<Vec<Tier>, String> {
    let mut tiers = Vec::new();
    for name in s.split(',') {
        let name = name.trim();
        tiers.push(match name {
            "exact-bb" => Tier::BranchAndBound,
            "algo2-refined" => Tier::Algo2Refined,
            "algo2" => Tier::Algo2,
            "price" => Tier::Price,
            "uu" => Tier::Uu,
            other => {
                return Err(format!(
                    "unknown ladder tier {other:?}; expected exact-bb, algo2-refined, algo2, price, or uu"
                ))
            }
        });
    }
    if tiers.is_empty() {
        return Err("ladder must name at least one tier".to_string());
    }
    Ok(tiers)
}

/// Configuration for [`run_fleet_serve`].
#[derive(Debug, Clone)]
pub struct FleetOpts {
    /// Worker processes.
    pub workers: usize,
    /// Per-worker admission depth; the fleet sheds beyond
    /// `queue × workers` pending requests.
    pub queue: usize,
    /// Deadline for requests that don't carry their own, milliseconds.
    pub default_deadline_ms: Option<u64>,
    /// Slack added to a deadline before a completed solve counts as a
    /// miss, milliseconds.
    pub grace_ms: u64,
    /// Longest accepted input line, bytes.
    pub max_line_bytes: usize,
    /// Heartbeat ping interval, milliseconds.
    pub heartbeat_ms: u64,
    /// Consecutive unanswered pings before a worker is declared dead.
    pub heartbeat_miss_limit: u32,
    /// Dispatch attempts per request before it is answered with a
    /// retryable `class:"internal"` error.
    pub max_retries: u32,
    /// Restarts per worker before it is retired.
    pub max_restarts: u64,
    /// Post-EOF drain budget, milliseconds (also forwarded to workers).
    pub drain_timeout_ms: u64,
    /// Per-worker warm-stream cap (forwarded to workers).
    pub max_streams: usize,
    /// Circuit-breaker trip threshold (forwarded to workers).
    pub breaker_threshold: u32,
    /// Circuit-breaker cooldown, in solves (forwarded to workers).
    pub breaker_cooldown: u64,
    /// Solver ladder override (forwarded to workers); `None` is the
    /// full default ladder.
    pub ladder: Option<Vec<Tier>>,
    /// Seed for retry/respawn backoff jitter.
    pub seed: u64,
    /// Merged-trace output path (`--trace`). When set, workers run with
    /// `--obs-spans`, every request carries a [`TraceCtx`], and the
    /// front-end writes one Chrome trace with a lane per worker process
    /// at shutdown.
    pub trace: Option<PathBuf>,
    /// End-to-end p99 latency objective, milliseconds (`--slo-p99-ms`);
    /// `None` uses [`DEFAULT_SLO_P99_MS`].
    pub slo_p99_ms: Option<u64>,
    /// Worker executable override; `None` re-execs the current binary.
    /// A testing hook (`--worker-cmd`): the malformed-frame binary test
    /// substitutes a stub worker through it.
    pub worker_cmd: Option<PathBuf>,
    /// Scheduled process faults, forwarded per worker. `None` in
    /// production.
    pub chaos: Option<ProcessChaosPlan>,
}

impl Default for FleetOpts {
    fn default() -> Self {
        FleetOpts {
            workers: 4,
            queue: 16,
            default_deadline_ms: None,
            grace_ms: 10,
            max_line_bytes: 1 << 20,
            heartbeat_ms: DEFAULT_HEARTBEAT_INTERVAL_MS,
            heartbeat_miss_limit: DEFAULT_HEARTBEAT_MISS_LIMIT,
            max_retries: DEFAULT_MAX_RETRIES,
            max_restarts: DEFAULT_MAX_RESTARTS,
            drain_timeout_ms: DEFAULT_DRAIN_TIMEOUT_MS,
            max_streams: 1024,
            breaker_threshold: aa_core::tiered::DEFAULT_BREAKER_THRESHOLD,
            breaker_cooldown: aa_core::tiered::DEFAULT_BREAKER_COOLDOWN,
            ladder: None,
            seed: 0,
            trace: None,
            slo_p99_ms: None,
            worker_cmd: None,
            chaos: None,
        }
    }
}

/// The payload [`PendingMap`] carries for every admitted request —
/// everything needed to replay it on another worker or answer it.
struct Job {
    id: serde_json::Value,
    deadline_ms: Option<u64>,
    arrived: Instant,
    deadline: Option<Instant>,
    problem: ProblemFile,
}

/// A parsed request line, carried from the stdin reader to the event
/// loop.
struct Admit {
    id: serde_json::Value,
    stream: Option<u64>,
    deadline_ms: Option<u64>,
    arrived: Instant,
    problem: ProblemFile,
}

/// Everything the event loop reacts to.
enum Event {
    Admit(Box<Admit>),
    Resize { workers: usize, id: serde_json::Value },
    FromWorker { worker: usize, incarnation: u64, msg: FromWorker },
    WorkerGone { worker: usize, incarnation: u64 },
    Eof,
}

/// A `status:"ok"` fleet response: the [`ServeResponse::Ok`] fields plus
/// `worker` (which process answered), `attempts` (dispatches the request
/// took; >1 means it survived a worker crash), and `solve_micros`
/// (worker-side solve wall time). Single-process serve omits the extras;
/// every field it does emit is produced identically here.
#[derive(Debug, Clone, Serialize)]
struct FleetOk {
    status: String,
    id: serde_json::Value,
    tier: String,
    degraded: bool,
    utility: f64,
    server: Vec<usize>,
    allocation: Vec<f64>,
    latency_ms: f64,
    worker: usize,
    attempts: u32,
    solve_micros: u64,
}

/// Acknowledgement line for a `{"control":"resize",...}` request.
#[derive(Debug, Clone, Serialize)]
struct ResizeAck {
    status: String,
    id: serde_json::Value,
    fleet: usize,
    was: usize,
}

/// Write one JSON line. [`ServeResponse`] lines go through [`respond`];
/// this is the same code path for the fleet-specific shapes.
fn emit<W: Write, T: Serialize>(out: &Mutex<W>, v: &T) {
    let line = serde_json::to_string(v).expect("responses always serialize");
    let mut w = out.lock().unwrap_or_else(|e| e.into_inner());
    // A dead output pipe is not fatal mid-drain: the loop still owes
    // every worker an orderly shutdown.
    let _ = writeln!(w, "{line}");
    let _ = w.flush();
}

/// Per-worker registry handles (`aa_fleet_*{worker=…}`).
struct WorkerMetrics {
    restarts: aa_obs::Counter,
    dispatched: aa_obs::Counter,
    up: aa_obs::Gauge,
    solves: aa_obs::Gauge,
    solve_panics: aa_obs::Gauge,
}

/// Front-end registry handles (`aa_fleet_*`), alongside the request
/// accounting the fleet shares with single-process serve
/// ([`ServeMetrics`], the `aa_serve_*` family).
struct FleetMetrics {
    dispatched: aa_obs::Counter,
    parked: aa_obs::Counter,
    retries: aa_obs::Counter,
    replayed: aa_obs::Counter,
    exhausted: aa_obs::Counter,
    duplicates: aa_obs::Counter,
    shutdown_answers: aa_obs::Counter,
    resizes: aa_obs::Counter,
    handoffs: aa_obs::Counter,
    per_worker: Vec<WorkerMetrics>,
}

impl FleetMetrics {
    fn new(registry: &aa_obs::Registry, workers: usize) -> Self {
        let mut fm = FleetMetrics {
            dispatched: registry.counter("aa_fleet_dispatched_total"),
            parked: registry.counter("aa_fleet_parked_total"),
            retries: registry.counter("aa_fleet_retries_total"),
            replayed: registry.counter("aa_fleet_replayed_total"),
            exhausted: registry.counter("aa_fleet_retry_exhausted_total"),
            duplicates: registry.counter("aa_fleet_duplicate_responses_total"),
            shutdown_answers: registry.counter("aa_fleet_shutdown_answers_total"),
            resizes: registry.counter("aa_fleet_resizes_total"),
            handoffs: registry.counter("aa_fleet_handoffs_total"),
            per_worker: Vec::new(),
        };
        fm.ensure(registry, workers);
        fm
    }

    /// Extend the per-worker series through `workers` slots (resize).
    fn ensure(&mut self, registry: &aa_obs::Registry, workers: usize) {
        while self.per_worker.len() < workers {
            let w = self.per_worker.len().to_string();
            self.per_worker.push(WorkerMetrics {
                restarts: registry.counter_labeled("aa_fleet_restarts_total", "worker", &w),
                dispatched: registry.counter_labeled(
                    "aa_fleet_worker_dispatched_total",
                    "worker",
                    &w,
                ),
                up: registry.gauge_labeled("aa_fleet_worker_up", "worker", &w),
                solves: registry.gauge_labeled("aa_fleet_worker_solves", "worker", &w),
                solve_panics: registry.gauge_labeled("aa_fleet_worker_solve_panics", "worker", &w),
            });
        }
    }
}

/// One worker slot's process-supervision state. The slot outlives its
/// process: each respawn bumps `incarnation`, and pipe events carrying
/// a stale incarnation are discarded.
struct WorkerSlot {
    child: Option<Child>,
    stdin: Option<std::process::ChildStdin>,
    reader: Option<std::thread::JoinHandle<()>>,
    incarnation: u64,
    up: bool,
    retired: bool,
    /// Shrink handoff: finish in-flight work, then close and exit.
    draining: bool,
    deaths: u64,
    /// Responses seen this incarnation (fallback chaos-offset estimate).
    resp_count: u64,
    /// Cumulative solve-seq offset handed to the next incarnation.
    chaos_offset: u64,
    respawn_at: Option<Instant>,
    spawned_at: Instant,
    unanswered_pings: u32,
    nonce: u64,
    in_flight: u64,
}

impl WorkerSlot {
    fn empty() -> Self {
        WorkerSlot {
            child: None,
            stdin: None,
            reader: None,
            incarnation: 0,
            up: false,
            retired: false,
            draining: false,
            deaths: 0,
            resp_count: 0,
            chaos_offset: 0,
            respawn_at: None,
            spawned_at: Instant::now(),
            unanswered_pings: 0,
            nonce: 0,
            in_flight: 0,
        }
    }
}

/// Build the `serve-worker` argv for slot `w` (pure, for tests).
fn worker_args(opts: &FleetOpts, w: usize, chaos_offset: u64) -> Vec<String> {
    let mut args = vec![
        "serve-worker".to_string(),
        "--index".to_string(),
        w.to_string(),
        "--max-streams".to_string(),
        opts.max_streams.to_string(),
        "--breaker-threshold".to_string(),
        opts.breaker_threshold.to_string(),
        "--breaker-cooldown".to_string(),
        opts.breaker_cooldown.to_string(),
        "--drain-timeout-ms".to_string(),
        opts.drain_timeout_ms.to_string(),
    ];
    if opts.trace.is_some() {
        args.push("--obs-spans".to_string());
    }
    if let Some(ladder) = &opts.ladder {
        args.push("--ladder".to_string());
        args.push(ladder.iter().map(|t| t.name()).collect::<Vec<_>>().join(","));
    }
    if let Some(plan) = &opts.chaos {
        if let Some(faults) = plan.faults.get(w) {
            if !faults.is_empty() {
                args.push("--chaos-faults".to_string());
                args.push(serde_json::to_string(faults).expect("plan serializes"));
                args.push("--chaos-offset".to_string());
                args.push(chaos_offset.to_string());
            }
        }
    }
    args
}

/// Decode one worker's stdout into events. Any protocol violation —
/// truncated frame, bad trailer, oversized length, unparseable payload
/// — ends the stream and reports the worker gone, so the front-end
/// treats it exactly as a crash (restart and replay).
fn reader_thread(stdout: ChildStdout, worker: usize, incarnation: u64, tx: &Sender<Event>) {
    let mut input = BufReader::new(stdout);
    loop {
        match read_frame(&mut input, MAX_FRAME_BYTES) {
            Ok(None) => break,
            Ok(Some(payload)) => {
                let parsed = std::str::from_utf8(&payload)
                    .ok()
                    .and_then(|s| serde_json::from_str::<FromWorker>(s).ok());
                match parsed {
                    Some(msg) => {
                        if tx.send(Event::FromWorker { worker, incarnation, msg }).is_err() {
                            return;
                        }
                    }
                    None => break,
                }
            }
            Err(_) => break,
        }
    }
    let _ = tx.send(Event::WorkerGone { worker, incarnation });
}

/// One worker incarnation's shipped observability state: the spans and
/// trace bindings it sent in `Obs` frames, its OS pid (the merged
/// trace's lane id), and the clock-alignment offset measured at every
/// worker-stamped frame.
struct LaneState {
    worker: usize,
    incarnation: u64,
    pid: u32,
    /// Front-end span clock minus worker span clock at the most recent
    /// handshake, µs. Added to worker timestamps when merging lanes.
    offset_micros: i64,
    spans: Vec<WireSpan>,
    bindings: Vec<SpanBinding>,
    /// Cumulative spans the worker dropped (full buffer), as last
    /// reported.
    dropped: u64,
}

/// Request-trace linkage created at admission: the reserved front-end
/// request span id (the `parent_span` workers root their solve spans
/// under) and the first-dispatch timestamp splitting queue wait from
/// worker time.
struct ReqTrace {
    trace_id: u64,
    span: u64,
    dispatched: Option<Instant>,
}

/// Front-end half of distributed tracing: per-incarnation worker lanes,
/// open request traces, and the merged Chrome-trace write at shutdown.
struct FleetObs {
    collector: &'static aa_obs::Collector,
    path: PathBuf,
    lanes: Vec<LaneState>,
    requests: HashMap<u64, ReqTrace>,
    /// Front-end span id → trace id, for annotating lane-0 events.
    span_trace: HashMap<u64, u64>,
}

impl FleetObs {
    fn new(path: PathBuf) -> FleetObs {
        let collector = aa_obs::Collector::install();
        collector.set_enabled(true);
        FleetObs {
            collector,
            path,
            lanes: Vec::new(),
            requests: HashMap::new(),
            span_trace: HashMap::new(),
        }
    }

    /// Open a request trace at admission, reserving the front-end span
    /// id workers will parent their solve spans under. Trace ids are
    /// `seq + 1` so 0 never appears on the wire.
    fn admit(&mut self, seq: u64) {
        let trace_id = seq + 1;
        let span = self.collector.alloc_span_id();
        self.requests.insert(seq, ReqTrace { trace_id, span, dispatched: None });
    }

    /// The [`TraceCtx`] to stamp on a dispatch of `seq`. The first
    /// dispatch starts the queue→worker clock; retries reuse the same
    /// context so a replayed solve still lands under the same request
    /// span.
    fn dispatch_ctx(&mut self, seq: u64) -> Option<TraceCtx> {
        let rt = self.requests.get_mut(&seq)?;
        if rt.dispatched.is_none() {
            rt.dispatched = Some(Instant::now());
        }
        Some(TraceCtx { trace_id: rt.trace_id, parent_span: rt.span })
    }

    fn lane_mut(&mut self, worker: usize, incarnation: u64) -> &mut LaneState {
        let at = self
            .lanes
            .iter()
            .position(|l| l.worker == worker && l.incarnation == incarnation)
            .unwrap_or_else(|| {
                self.lanes.push(LaneState {
                    worker,
                    incarnation,
                    pid: 0,
                    offset_micros: 0,
                    spans: Vec::new(),
                    bindings: Vec::new(),
                    dropped: 0,
                });
                self.lanes.len() - 1
            });
        &mut self.lanes[at]
    }

    /// Refresh a lane's clock offset from a worker-stamped frame
    /// (`Hello`, `Pong`, and `Obs` all carry the worker's span clock).
    fn on_worker_clock(&mut self, worker: usize, incarnation: u64, pid: Option<u32>, worker_now: u64) {
        let now = self.collector.now_micros();
        let lane = self.lane_mut(worker, incarnation);
        #[allow(clippy::cast_possible_wrap)]
        {
            lane.offset_micros = now as i64 - worker_now as i64;
        }
        if let Some(pid) = pid {
            lane.pid = pid;
        }
    }

    /// Fold one shipped `Obs` frame into the worker's lane.
    fn on_obs(
        &mut self,
        worker: usize,
        incarnation: u64,
        spans: Vec<WireSpan>,
        bindings: Vec<SpanBinding>,
        dropped: u64,
    ) {
        let lane = self.lane_mut(worker, incarnation);
        lane.spans.extend(spans);
        lane.bindings.extend(bindings);
        lane.dropped = lane.dropped.max(dropped);
    }

    /// Close a request's trace at completion: record the request span
    /// under its reserved id plus queue-wait and worker-await children
    /// (the latter only once the request was actually dispatched).
    fn finish(&mut self, seq: u64, arrived: Instant) {
        let Some(rt) = self.requests.remove(&seq) else { return };
        let start = self.collector.micros_at(arrived);
        let end = self.collector.now_micros();
        self.collector
            .record_prealloc(rt.span, "request", start, end.saturating_sub(start), 0);
        self.span_trace.insert(rt.span, rt.trace_id);
        if let Some(d) = rt.dispatched {
            let dispatch = self.collector.micros_at(d);
            let queued = self.collector.record_manual(
                "queue_wait",
                start,
                dispatch.saturating_sub(start),
                rt.span,
            );
            let awaited = self.collector.record_manual(
                "await_worker",
                dispatch,
                end.saturating_sub(dispatch),
                rt.span,
            );
            self.span_trace.insert(queued, rt.trace_id);
            self.span_trace.insert(awaited, rt.trace_id);
        }
    }

    /// Assemble and write the merged Chrome trace: lane 0 is the
    /// front-end collector verbatim; each worker incarnation becomes a
    /// lane keyed by its OS pid with timestamps shifted onto the
    /// front-end clock and span ids remapped into a per-lane namespace.
    /// Worker solve roots with a trace binding re-parent under the
    /// front-end request span — that link is what makes each timeline
    /// end-to-end.
    fn write(&self) {
        const LANE_ID_MASK: u64 = (1 << 40) - 1;
        let mut lanes = Vec::with_capacity(self.lanes.len() + 1);
        lanes.push(TraceLane {
            pid: 1,
            label: "front-end".to_string(),
            events: self
                .collector
                .events()
                .into_iter()
                .map(|e| LaneEvent {
                    name: e.name.to_string(),
                    start_micros: e.start_micros,
                    duration_micros: e.duration_micros,
                    thread_id: e.thread_id,
                    id: e.id,
                    parent_id: e.parent_id,
                    trace_id: self.span_trace.get(&e.id).copied().unwrap_or(0),
                })
                .collect(),
        });
        let mut dropped = self.collector.dropped_events();
        for (i, lane) in self.lanes.iter().enumerate() {
            dropped += lane.dropped;
            let lane_no = i as u64 + 1;
            let remap = |id: u64| (lane_no << 40) | (id & LANE_ID_MASK);
            let bound: HashMap<u64, &SpanBinding> =
                lane.bindings.iter().map(|b| (b.span, b)).collect();
            let events = lane
                .spans
                .iter()
                .map(|s| {
                    let (parent_id, trace_id) = match (s.parent_id, bound.get(&s.id)) {
                        // A bound root parents under the front-end
                        // request span (lane-0 ids are not remapped).
                        (0, Some(b)) => (b.parent_span, b.trace_id),
                        (0, None) => (0, 0),
                        (p, _) => (remap(p), 0),
                    };
                    #[allow(clippy::cast_possible_wrap, clippy::cast_sign_loss)]
                    let start_micros =
                        (s.start_micros as i64 + lane.offset_micros).max(0) as u64;
                    LaneEvent {
                        name: s.name.clone(),
                        start_micros,
                        duration_micros: s.duration_micros,
                        thread_id: s.thread_id,
                        id: remap(s.id),
                        parent_id,
                        trace_id,
                    }
                })
                .collect();
            // A lane with no Hello (pid unknown) still renders, on a
            // synthetic pid clear of real ones.
            #[allow(clippy::cast_possible_truncation)]
            let pid = if lane.pid == 0 { 1_000_000 + lane_no as u32 } else { lane.pid };
            lanes.push(TraceLane {
                pid,
                label: format!("worker {} pid {pid}", lane.worker),
                events,
            });
        }
        let json = chrome_trace_merged(&lanes, dropped);
        match std::fs::write(&self.path, &json) {
            Ok(()) => aa_obs::obs_info!(
                "fleet",
                "merged trace: {} lanes → {}",
                lanes.len(),
                self.path.display()
            ),
            Err(e) => aa_obs::obs_warn!(
                "fleet",
                "failed to write merged trace {}: {e}",
                self.path.display()
            ),
        }
    }
}

/// A retired worker must stop exporting as live: drop its federated
/// series (no more re-publishes — the slot never respawns) and pin its
/// `aa_fleet_worker_up{worker=…}` gauge to 0.
fn retire_worker_export(registry: &aa_obs::Registry, fm: &FleetMetrics, w: usize) {
    registry.drop_worker(&w.to_string());
    if let Some(m) = fm.per_worker.get(w) {
        m.up.set(0.0);
    }
}

/// The event loop's state. One instance, owned by one thread.
struct FleetCore<'a, W: Write> {
    opts: &'a FleetOpts,
    registry: &'a aa_obs::Registry,
    out: &'a Mutex<W>,
    metrics: &'a ServeMetrics,
    fm: FleetMetrics,
    tx: Sender<Event>,
    router: FleetRouter,
    pending: PendingMap<Job>,
    parked: ParkedQueues<u64>,
    /// Requests admitted while no worker is routable (transient
    /// all-down); drained on the next hello.
    pen: VecDeque<u64>,
    /// Replays scheduled after backoff: (due, seq).
    retries: BinaryHeap<Reverse<(Instant, u64)>>,
    slots: Vec<WorkerSlot>,
    next_seq: u64,
    next_incarnation: u64,
    rng: StdRng,
    retry_backoff: Backoff,
    spawn_backoff: Backoff,
    last_tick: Instant,
    eof: bool,
    drain_deadline: Option<Instant>,
    /// Distributed-tracing state; `Some` iff `--trace` was given.
    obs: Option<FleetObs>,
}

impl<'a, W: Write> FleetCore<'a, W> {
    fn new(
        opts: &'a FleetOpts,
        registry: &'a aa_obs::Registry,
        out: &'a Mutex<W>,
        metrics: &'a ServeMetrics,
        tx: Sender<Event>,
    ) -> Result<Self, CliError> {
        let workers = opts.workers.max(1);
        let mut core = FleetCore {
            opts,
            registry,
            out,
            metrics,
            fm: FleetMetrics::new(registry, workers),
            tx,
            router: FleetRouter::new(workers),
            pending: PendingMap::new(),
            parked: ParkedQueues::new(),
            pen: VecDeque::new(),
            retries: BinaryHeap::new(),
            slots: (0..workers).map(|_| WorkerSlot::empty()).collect(),
            next_seq: 0,
            next_incarnation: 1,
            rng: StdRng::seed_from_u64(opts.seed ^ 0x666c_6565_7421),
            retry_backoff: Backoff {
                base: Duration::from_millis(DEFAULT_RETRY_BACKOFF_BASE_MS),
                max: Duration::from_millis(DEFAULT_RETRY_BACKOFF_MAX_MS),
            },
            spawn_backoff: Backoff {
                base: Duration::from_millis(DEFAULT_RETRY_BACKOFF_BASE_MS),
                max: Duration::from_millis(DEFAULT_RETRY_BACKOFF_MAX_MS),
            },
            last_tick: Instant::now(),
            eof: false,
            drain_deadline: None,
            obs: opts.trace.clone().map(FleetObs::new),
        };
        for w in 0..workers {
            if let Err(e) = core.spawn_worker(w) {
                // Startup is all-or-nothing: tear down what spawned and
                // surface the distinct exit-code-9 class.
                core.shutdown();
                return Err(CliError::WorkerSpawn(e));
            }
        }
        Ok(core)
    }

    /// Spawn (or respawn) slot `w` and its pipe reader thread.
    fn spawn_worker(&mut self, w: usize) -> std::io::Result<()> {
        let program = match &self.opts.worker_cmd {
            Some(p) => p.clone(),
            None => std::env::current_exe()?,
        };
        let inc = self.next_incarnation;
        self.next_incarnation += 1;
        let mut child = Command::new(program)
            .args(worker_args(self.opts, w, self.slots[w].chaos_offset))
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()?;
        let stdout = child.stdout.take().expect("stdout piped");
        let stdin = child.stdin.take().expect("stdin piped");
        let tx = self.tx.clone();
        let reader = std::thread::spawn(move || reader_thread(stdout, w, inc, &tx));
        let slot = &mut self.slots[w];
        slot.child = Some(child);
        slot.stdin = Some(stdin);
        slot.reader = Some(reader);
        slot.incarnation = inc;
        slot.up = false;
        slot.resp_count = 0;
        slot.respawn_at = None;
        slot.spawned_at = Instant::now();
        slot.unanswered_pings = 0;
        slot.in_flight = 0;
        Ok(())
    }

    /// Best-effort frame write; a dead pipe surfaces via the reader's
    /// `WorkerGone`, which replays whatever was assigned.
    fn send_to(&mut self, w: usize, msg: &ToWorker) {
        let payload = serde_json::to_string(msg).expect("requests always serialize");
        if let Some(stdin) = self.slots[w].stdin.as_mut() {
            let _ = write_frame(stdin, payload.as_bytes());
            let _ = stdin.flush();
        }
    }

    fn run(mut self, rx: &Receiver<Event>) {
        self.last_tick = Instant::now();
        loop {
            match rx.recv_timeout(self.next_wakeup()) {
                Ok(ev) => self.handle(ev),
                Err(RecvTimeoutError::Timeout) => {}
                // Unreachable while `self.tx` lives, but harmless.
                Err(RecvTimeoutError::Disconnected) => break,
            }
            self.service_timers();
            if self.eof {
                if self.pending.is_empty() {
                    break;
                }
                if self.drain_deadline.is_some_and(|d| Instant::now() >= d) {
                    self.flush_shutdown();
                    break;
                }
            }
        }
        self.shutdown();
        // A worker ships its final span batch right after the answer
        // that emptied `pending`, so those frames may still be queued
        // when the loop exits. Absorb the stragglers (Obs only —
        // responses and deaths are moot post-shutdown) so the merged
        // trace and federated metrics cover every solve.
        while let Ok(ev) = rx.try_recv() {
            if let Event::FromWorker { msg: FromWorker::Obs { .. }, .. } = &ev {
                self.handle(ev);
            }
        }
        if let Some(obs) = &self.obs {
            obs.write();
        }
    }

    /// How long the loop may sleep before a timer (heartbeat, retry,
    /// respawn, drain deadline) needs service.
    fn next_wakeup(&self) -> Duration {
        let now = Instant::now();
        let mut next = self.last_tick + Duration::from_millis(self.opts.heartbeat_ms.max(1));
        if let Some(Reverse((t, _))) = self.retries.peek() {
            next = next.min(*t);
        }
        for slot in &self.slots {
            if let Some(t) = slot.respawn_at {
                next = next.min(t);
            }
        }
        if let Some(d) = self.drain_deadline {
            next = next.min(d);
        }
        next.saturating_duration_since(now)
    }

    fn service_timers(&mut self) {
        let now = Instant::now();
        for w in 0..self.slots.len() {
            if self.slots[w].respawn_at.is_some_and(|t| now >= t) {
                self.slots[w].respawn_at = None;
                self.respawn(w);
            }
        }
        while self.retries.peek().is_some_and(|Reverse((t, _))| *t <= now) {
            let Reverse((_, seq)) = self.retries.pop().expect("peeked");
            self.dispatch(seq);
        }
        if now.saturating_duration_since(self.last_tick)
            >= Duration::from_millis(self.opts.heartbeat_ms.max(1))
        {
            self.last_tick = now;
            self.tick();
        }
    }

    /// One heartbeat round: declare silent workers dead, ping the rest.
    fn tick(&mut self) {
        let hello_grace = Duration::from_millis(
            self.opts.heartbeat_ms.max(1)
                * u64::from(self.opts.heartbeat_miss_limit.max(1) + 1),
        );
        for w in 0..self.slots.len() {
            if self.slots[w].child.is_none() || self.slots[w].retired {
                continue;
            }
            if !self.slots[w].up {
                if self.slots[w].spawned_at.elapsed() > hello_grace {
                    self.kill_worker(w);
                }
                continue;
            }
            if self.slots[w].unanswered_pings >= self.opts.heartbeat_miss_limit.max(1) {
                self.kill_worker(w);
                continue;
            }
            self.slots[w].nonce += 1;
            let ping = ToWorker::Ping { nonce: self.slots[w].nonce };
            self.send_to(w, &ping);
            self.slots[w].unanswered_pings += 1;
            self.maybe_close_draining(w);
        }
    }

    /// Force-kill a wedged worker; its reader thread reports the death.
    fn kill_worker(&mut self, w: usize) {
        if let Some(child) = self.slots[w].child.as_mut() {
            let _ = child.kill();
        }
    }

    /// A shrink-drained worker with nothing in flight gets its EOF.
    fn maybe_close_draining(&mut self, w: usize) {
        if self.slots[w].draining && self.slots[w].in_flight == 0 {
            self.slots[w].stdin = None;
        }
    }

    fn handle(&mut self, ev: Event) {
        match ev {
            Event::Admit(admit) => self.on_admit(*admit),
            Event::Resize { workers, id } => self.on_resize(workers, id),
            Event::FromWorker { worker, incarnation, msg } => {
                if worker >= self.slots.len() || self.slots[worker].incarnation != incarnation {
                    return;
                }
                match msg {
                    FromWorker::Hello { pid, now_micros, .. } => {
                        if let Some(obs) = &mut self.obs {
                            obs.on_worker_clock(worker, incarnation, Some(pid), now_micros);
                        }
                        self.on_hello(worker);
                    }
                    FromWorker::Pong { solves, solve_panics, now_micros, metrics, .. } => {
                        self.slots[worker].unanswered_pings = 0;
                        #[allow(clippy::cast_precision_loss)]
                        {
                            self.fm.per_worker[worker].solves.set(solves as f64);
                            self.fm.per_worker[worker].solve_panics.set(solve_panics as f64);
                        }
                        if let Some(obs) = &mut self.obs {
                            obs.on_worker_clock(worker, incarnation, None, now_micros);
                        }
                        if let Some(snap) = metrics {
                            self.registry
                                .merge_worker_snapshot(&worker.to_string(), snap.into_federated());
                        }
                    }
                    FromWorker::Resp { seq, result } => self.on_resp(worker, seq, result),
                    FromWorker::Obs { now_micros, spans, bindings, dropped, metrics } => {
                        if let Some(obs) = &mut self.obs {
                            obs.on_worker_clock(worker, incarnation, None, now_micros);
                            obs.on_obs(worker, incarnation, spans, bindings, dropped);
                        }
                        if let Some(snap) = metrics {
                            self.registry
                                .merge_worker_snapshot(&worker.to_string(), snap.into_federated());
                        }
                    }
                }
            }
            Event::WorkerGone { worker, incarnation } => self.on_gone(worker, incarnation),
            Event::Eof => {
                self.eof = true;
                if !self.pending.is_empty() {
                    self.drain_deadline = Some(
                        Instant::now() + Duration::from_millis(self.opts.drain_timeout_ms),
                    );
                }
            }
        }
    }

    fn on_admit(&mut self, admit: Admit) {
        let cap = self.opts.queue.max(1) * self.router.workers().max(1);
        if self.pending.len() >= cap {
            self.metrics.shed.inc();
            #[allow(clippy::cast_possible_truncation)]
            self.metrics
                .observe_e2e("overloaded", (admit.arrived.elapsed().as_micros() as u64).max(1));
            respond(
                self.out,
                &ServeResponse::Overloaded {
                    id: admit.id,
                    retry_after_ms: estimated_drain_ms(self.metrics, self.opts.queue),
                },
            )
            .ok();
            return;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        let deadline = admit
            .deadline_ms
            .map(|d| admit.arrived + Duration::from_millis(d));
        let job = Job {
            id: admit.id,
            deadline_ms: admit.deadline_ms,
            arrived: admit.arrived,
            deadline,
            problem: admit.problem,
        };
        self.pending
            .insert(seq, admit.stream, job)
            .expect("front-end seqs are unique by construction");
        if let Some(obs) = &mut self.obs {
            obs.admit(seq);
        }
        self.dispatch(seq);
    }

    /// Request-completion accounting shared by every answer path: the
    /// per-class SLO histogram and burn-rate tracker, plus (when
    /// tracing) the request span closing out the end-to-end timeline.
    fn observe_completion(&mut self, seq: u64, arrived: Instant, class: &str) {
        #[allow(clippy::cast_possible_truncation)]
        let latency = (arrived.elapsed().as_micros() as u64).max(1);
        self.metrics.observe_e2e(class, latency);
        if let Some(obs) = &mut self.obs {
            obs.finish(seq, arrived);
        }
    }

    /// Route and send one pending, unassigned request.
    fn dispatch(&mut self, seq: u64) {
        let Some(entry) = self.pending.get(seq) else {
            return; // already answered (e.g. a retry raced a completion)
        };
        if entry.assigned.is_some() {
            return;
        }
        let stream = entry.stream;
        if entry.job.deadline.is_some_and(|d| Instant::now() >= d) {
            let e = self.pending.complete(seq).expect("just observed pending");
            self.metrics.expired_in_queue.inc();
            self.observe_completion(seq, e.job.arrived, "deadline");
            let d = e.job.deadline_ms.unwrap_or(0);
            respond(
                self.out,
                &ServeResponse::Error {
                    id: e.job.id,
                    class: "deadline".to_string(),
                    error: format!("deadline ({d} ms) expired before dispatch"),
                },
            )
            .ok();
            return;
        }
        match stream {
            Some(strm) => match self.router.route(strm) {
                RouteDecision::To(w) => self.send_req(w, seq),
                RouteDecision::Park => {
                    self.parked.park(strm, seq);
                    self.fm.parked.inc();
                }
                RouteDecision::NoWorkers => self.no_workers(seq),
            },
            None => {
                let cold = {
                    let slots = &self.slots;
                    self.router.route_cold(|w| slots[w].in_flight as usize)
                };
                match cold {
                    Some(w) => self.send_req(w, seq),
                    None => self.no_workers(seq),
                }
            }
        }
    }

    fn send_req(&mut self, w: usize, seq: u64) {
        let now = Instant::now();
        self.pending.assign(seq, w).expect("dispatch checked pending");
        let entry = self.pending.get(seq).expect("just assigned");
        #[allow(clippy::cast_possible_truncation)]
        let budget_ms = entry
            .job
            .deadline
            .map(|d| d.saturating_duration_since(now).as_millis() as u64);
        let problem = entry.job.problem.clone();
        let stream = entry.stream;
        let trace = self.obs.as_mut().and_then(|o| o.dispatch_ctx(seq));
        let msg = ToWorker::Req { seq, stream, budget_ms, trace, problem };
        self.slots[w].in_flight += 1;
        self.fm.dispatched.inc();
        self.fm.per_worker[w].dispatched.inc();
        self.send_to(w, &msg);
    }

    /// No routable worker: hold the request unless the whole fleet is
    /// retired, in which case fail it as retryable-internal.
    fn no_workers(&mut self, seq: u64) {
        if self.all_retired() {
            if let Some(e) = self.pending.complete(seq) {
                self.metrics.internal_errors.inc();
                self.observe_completion(seq, e.job.arrived, "internal");
                respond(
                    self.out,
                    &ServeResponse::Error {
                        id: e.job.id,
                        class: "internal".to_string(),
                        error: "no live fleet workers (all retired); safe to retry elsewhere"
                            .to_string(),
                    },
                )
                .ok();
            }
        } else {
            self.pen.push_back(seq);
        }
    }

    fn all_retired(&self) -> bool {
        (0..self.router.workers()).all(|w| self.slots[w].retired)
    }

    fn on_hello(&mut self, w: usize) {
        self.slots[w].up = true;
        self.slots[w].unanswered_pings = 0;
        self.fm.per_worker[w].up.set(1.0);
        self.router.worker_up(w);
        let pen = std::mem::take(&mut self.pen);
        for seq in pen {
            self.dispatch(seq);
        }
    }

    fn on_resp(&mut self, w: usize, seq: u64, result: WorkerResult) {
        self.slots[w].resp_count += 1;
        self.slots[w].in_flight = self.slots[w].in_flight.saturating_sub(1);
        let Some(entry) = self.pending.complete(seq) else {
            // A completion for a seq no longer pending — replayed and
            // answered elsewhere already. Exactly-once: drop it.
            self.fm.duplicates.inc();
            return;
        };
        let job = entry.job;
        let attempts = entry.attempts;
        match result {
            WorkerResult::Ok { tier, degraded, utility, server, allocation, solve_micros } => {
                self.metrics.solved.inc();
                self.observe_completion(seq, job.arrived, "ok");
                let latency_ms = job.arrived.elapsed().as_secs_f64() * 1e3;
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                self.metrics.latency.record_micros(((latency_ms * 1e3) as u64).max(1));
                // Tier names come from the wire here, so look up safely
                // instead of `ServeMetrics::tier` (which asserts the name
                // is pre-registered).
                if let Some((_, h)) = self.metrics.per_tier.iter().find(|(n, _)| *n == tier) {
                    h.record_micros(solve_micros.max(1));
                }
                if let Some(d) = job.deadline_ms {
                    #[allow(clippy::cast_precision_loss)]
                    if latency_ms > (d + self.opts.grace_ms) as f64 {
                        self.metrics.deadline_misses.inc();
                    }
                }
                emit(
                    self.out,
                    &FleetOk {
                        status: "ok".to_string(),
                        id: job.id,
                        tier,
                        degraded,
                        utility,
                        server,
                        allocation,
                        latency_ms,
                        worker: w,
                        attempts,
                        solve_micros,
                    },
                );
            }
            WorkerResult::Err { class, error, queue_expired, .. } => {
                match class.as_str() {
                    "deadline" if queue_expired => self.metrics.expired_in_queue.inc(),
                    "deadline" | "solve" | "problem" => self.metrics.solve_errors.inc(),
                    "solve_panic" => {
                        self.metrics.solve_errors.inc();
                        self.metrics.solve_panics.inc();
                    }
                    "shutdown" => self.fm.shutdown_answers.inc(),
                    _ => self.metrics.internal_errors.inc(),
                }
                self.observe_completion(seq, job.arrived, &class);
                respond(self.out, &ServeResponse::Error { id: job.id, class, error }).ok();
            }
        }
        if let Some(strm) = entry.stream {
            for released in self.router.complete(strm, w) {
                let queue = self.parked.release(released);
                for parked_seq in queue {
                    self.dispatch(parked_seq);
                }
            }
        }
        self.maybe_close_draining(w);
    }

    /// A worker died (or violated the protocol): reroute its ring
    /// ranges, replay its in-flight requests with backoff, respawn it.
    fn on_gone(&mut self, w: usize, incarnation: u64) {
        if w >= self.slots.len() || self.slots[w].incarnation != incarnation {
            return;
        }
        // Reap this incarnation.
        if let Some(h) = self.slots[w].reader.take() {
            let _ = h.join();
        }
        if let Some(mut child) = self.slots[w].child.take() {
            let _ = child.kill();
            let _ = child.wait();
        }
        self.slots[w].stdin = None;
        self.slots[w].up = false;
        self.slots[w].unanswered_pings = 0;
        self.fm.per_worker[w].up.set(0.0);

        // Reroute: streams the dead worker held release to their ring
        // successor immediately.
        for strm in self.router.worker_down(w) {
            let queue = self.parked.release(strm);
            for seq in queue {
                self.dispatch(seq);
            }
        }

        // Replay in-flight requests — reinsert-then-complete, so the
        // pending map stays the sole exactly-once bookkeeper.
        let taken = self.pending.take_assigned(w);
        self.slots[w].in_flight = 0;
        let now = Instant::now();
        for entry in taken {
            self.fm.replayed.inc();
            let seq = entry.seq;
            let attempts = entry.attempts;
            let exhausted = attempts > self.opts.max_retries;
            self.pending
                .reinsert(entry)
                .expect("taken seqs are no longer in the map");
            if exhausted {
                let e = self.pending.complete(seq).expect("just reinserted");
                self.metrics.internal_errors.inc();
                self.fm.exhausted.inc();
                self.observe_completion(seq, e.job.arrived, "internal");
                respond(
                    self.out,
                    &ServeResponse::Error {
                        id: e.job.id,
                        class: "internal".to_string(),
                        error: format!(
                            "request lost {attempts} dispatch attempts to worker crashes; \
                             safe to retry"
                        ),
                    },
                )
                .ok();
            } else {
                self.fm.retries.inc();
                let delay = self.retry_backoff.delay(attempts.max(1), &mut self.rng);
                self.retries.push(Reverse((now + delay, seq)));
            }
        }

        // Supervise: count the death, then retire or schedule respawn.
        self.slots[w].deaths += 1;
        self.fm.per_worker[w].restarts.inc();
        if w >= self.router.workers() || self.slots[w].draining {
            // Shrunk away — the death doubles as drain completion.
            self.slots[w].draining = false;
            self.slots[w].retired = true;
            self.fm.handoffs.inc();
            retire_worker_export(self.registry, &self.fm, w);
            return;
        }
        if self.slots[w].deaths > self.opts.max_restarts {
            self.slots[w].retired = true;
            retire_worker_export(self.registry, &self.fm, w);
            if self.all_retired() {
                self.fail_all_pending();
            }
            return;
        }
        // Next incarnation's chaos offset: the plan's fault seq for this
        // death keeps the cumulative solve counter exact (the fault that
        // just fired can never re-fire); unplanned deaths fall back to
        // the observed response count.
        let fallback = self.slots[w].chaos_offset + self.slots[w].resp_count;
        self.slots[w].chaos_offset = match &self.opts.chaos {
            Some(plan) => plan
                .faults
                .get(w)
                .and_then(|fs| fs.get(self.slots[w].deaths as usize - 1))
                .map_or(fallback, |&(seq, _)| seq),
            None => fallback,
        };
        #[allow(clippy::cast_possible_truncation)]
        let attempt = self.slots[w].deaths.min(u64::from(u32::MAX)) as u32;
        let delay = self.spawn_backoff.delay(attempt, &mut self.rng);
        self.slots[w].respawn_at = Some(now + delay);
    }

    fn respawn(&mut self, w: usize) {
        if self.slots[w].retired || w >= self.router.workers() {
            return;
        }
        if self.spawn_worker(w).is_err() {
            // Runtime spawn failure (distinct from startup): treat it as
            // an instant death and keep backing off until the restart
            // budget retires the slot.
            self.slots[w].deaths += 1;
            if self.slots[w].deaths > self.opts.max_restarts {
                self.slots[w].retired = true;
                retire_worker_export(self.registry, &self.fm, w);
                if self.all_retired() {
                    self.fail_all_pending();
                }
            } else {
                #[allow(clippy::cast_possible_truncation)]
                let attempt = self.slots[w].deaths.min(u64::from(u32::MAX)) as u32;
                let delay = self.spawn_backoff.delay(attempt, &mut self.rng);
                self.slots[w].respawn_at = Some(Instant::now() + delay);
            }
        }
    }

    /// Membership change by control request: growing spawns, shrinking
    /// drains and hands the removed ring ranges to the survivors.
    fn on_resize(&mut self, n: usize, id: serde_json::Value) {
        let was = self.router.workers();
        self.fm.resizes.inc();
        if n == 0 {
            respond(
                self.out,
                &ServeResponse::Error {
                    id,
                    class: "control".to_string(),
                    error: "cannot resize the fleet to zero workers".to_string(),
                },
            )
            .ok();
            return;
        }
        if n > was {
            self.fm.ensure(self.registry, n);
            while self.slots.len() < n {
                self.slots.push(WorkerSlot::empty());
            }
            self.router.resize(n);
            for w in was..n {
                self.slots[w].retired = false;
                self.slots[w].draining = false;
                self.slots[w].deaths = 0;
                if self.spawn_worker(w).is_err() {
                    // Grow is best-effort at runtime: the slot stays
                    // down and the respawn path keeps trying.
                    self.slots[w].deaths = 1;
                    self.slots[w].respawn_at =
                        Some(Instant::now() + self.spawn_backoff.delay(1, &mut self.rng));
                }
            }
        } else if n < was {
            // Down the removed workers in the router *before* resizing:
            // resize drops their outstanding entries, and the parked
            // streams they held must be recovered first.
            for w in n..was {
                self.slots[w].draining = true;
                self.slots[w].respawn_at = None;
                for strm in self.router.worker_down(w) {
                    let queue = self.parked.release(strm);
                    for seq in queue {
                        self.dispatch(seq);
                    }
                }
            }
            self.router.resize(n);
            for w in n..was {
                if self.slots[w].child.is_none() {
                    // Already dead — nothing to drain.
                    self.slots[w].draining = false;
                    self.slots[w].retired = true;
                    retire_worker_export(self.registry, &self.fm, w);
                } else {
                    self.maybe_close_draining(w);
                }
            }
        }
        emit(self.out, &ResizeAck { status: "resized".to_string(), id, fleet: n, was });
    }

    /// Every live slot is retired: nothing can ever be dispatched again.
    fn fail_all_pending(&mut self) {
        self.pen.clear();
        self.retries.clear();
        self.parked = ParkedQueues::new();
        for e in self.pending.drain_all() {
            self.metrics.internal_errors.inc();
            #[allow(clippy::cast_possible_truncation)]
            self.metrics
                .observe_e2e("internal", (e.job.arrived.elapsed().as_micros() as u64).max(1));
            if let Some(obs) = &mut self.obs {
                obs.finish(e.seq, e.job.arrived);
            }
            respond(
                self.out,
                &ServeResponse::Error {
                    id: e.job.id,
                    class: "internal".to_string(),
                    error: "all fleet workers retired; safe to retry elsewhere".to_string(),
                },
            )
            .ok();
        }
    }

    /// Drain-timeout at shutdown: answer what's left as retryable.
    fn flush_shutdown(&mut self) {
        self.pen.clear();
        self.retries.clear();
        self.parked = ParkedQueues::new();
        for e in self.pending.drain_all() {
            self.fm.shutdown_answers.inc();
            #[allow(clippy::cast_possible_truncation)]
            self.metrics
                .observe_e2e("shutdown", (e.job.arrived.elapsed().as_micros() as u64).max(1));
            if let Some(obs) = &mut self.obs {
                obs.finish(e.seq, e.job.arrived);
            }
            respond(
                self.out,
                &ServeResponse::Error {
                    id: e.job.id,
                    class: "shutdown".to_string(),
                    error: "front-end shutting down before the request was answered; \
                            safe to retry"
                        .to_string(),
                },
            )
            .ok();
        }
    }

    /// Close every worker's stdin, give them a bounded window to drain
    /// and exit cleanly, then force the stragglers and join the readers.
    fn shutdown(&mut self) {
        for slot in &mut self.slots {
            slot.stdin = None;
            slot.respawn_at = None;
        }
        let deadline = Instant::now()
            + Duration::from_millis(self.opts.drain_timeout_ms.saturating_add(500));
        loop {
            let mut alive = false;
            for slot in &mut self.slots {
                if let Some(child) = slot.child.as_mut() {
                    match child.try_wait() {
                        Ok(Some(_)) | Err(_) => slot.child = None,
                        Ok(None) => alive = true,
                    }
                }
            }
            if !alive || Instant::now() >= deadline {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        for (w, slot) in self.slots.iter_mut().enumerate() {
            if let Some(mut child) = slot.child.take() {
                let _ = child.kill();
                let _ = child.wait();
            }
            // Safe to join: the child is dead, so the pipe is at EOF.
            if let Some(h) = slot.reader.take() {
                let _ = h.join();
            }
            if w < self.fm.per_worker.len() {
                self.fm.per_worker[w].up.set(0.0);
            }
        }
    }
}

/// Parse stdin lines into admission and control events. Parse and
/// problem errors are answered inline, exactly like single-process
/// serve; unknown control lines get `class:"control"`.
fn fleet_reader_loop<R: BufRead, W: Write>(
    mut input: R,
    tx: &Sender<Event>,
    out: &Mutex<W>,
    metrics: &ServeMetrics,
    opts: &FleetOpts,
) -> std::io::Result<()> {
    let mut buf = Vec::new();
    loop {
        match read_bounded_line(&mut input, &mut buf, opts.max_line_bytes)? {
            LineRead::Eof => return Ok(()),
            LineRead::Oversized => {
                metrics.received.inc();
                metrics.parse_errors.inc();
                respond(
                    out,
                    &ServeResponse::Error {
                        id: serde_json::Value::Null,
                        class: "parse".to_string(),
                        error: format!(
                            "request line exceeds the {} byte cap (--max-line-bytes)",
                            opts.max_line_bytes
                        ),
                    },
                )?;
                continue;
            }
            LineRead::Line => {}
        }
        let Ok(line) = std::str::from_utf8(&buf) else {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "request stream is not valid UTF-8",
            ));
        };
        if line.trim().is_empty() {
            continue;
        }
        metrics.received.inc();
        let value = match serde_json::from_str::<serde_json::Value>(line) {
            Err(e) => {
                metrics.parse_errors.inc();
                respond(
                    out,
                    &ServeResponse::Error {
                        id: serde_json::Value::Null,
                        class: "parse".to_string(),
                        error: e.to_string(),
                    },
                )?;
                continue;
            }
            Ok(v) => v,
        };
        if let Some(control) = value.get("control") {
            let id = value.get("id").cloned().unwrap_or(serde_json::Value::Null);
            let fleet = value.get("fleet").and_then(serde_json::Value::as_u64);
            match (control.as_str(), fleet) {
                (Some("resize"), Some(n)) if n >= 1 => {
                    #[allow(clippy::cast_possible_truncation)]
                    let workers = n as usize;
                    if tx.send(Event::Resize { workers, id }).is_err() {
                        return Ok(());
                    }
                }
                _ => {
                    metrics.parse_errors.inc();
                    respond(
                        out,
                        &ServeResponse::Error {
                            id,
                            class: "control".to_string(),
                            error: "unsupported control line; expected \
                                    {\"control\":\"resize\",\"fleet\":N} with N >= 1"
                                .to_string(),
                        },
                    )?;
                }
            }
            continue;
        }
        let req = match <ServeRequest as Deserialize>::from_value(&value) {
            Err(e) => {
                metrics.parse_errors.inc();
                respond(
                    out,
                    &ServeResponse::Error {
                        id: serde_json::Value::Null,
                        class: "parse".to_string(),
                        error: e,
                    },
                )?;
                continue;
            }
            Ok(req) => req,
        };
        // Validate up front so `class:"problem"` answers don't burn a
        // round trip to a worker (parity with single-process serve).
        if let Err(e) = build_problem(&req.problem) {
            metrics.solve_errors.inc();
            respond(
                out,
                &ServeResponse::Error {
                    id: req.id,
                    class: "problem".to_string(),
                    error: e.to_string(),
                },
            )?;
            continue;
        }
        let admit = Admit {
            id: req.id,
            stream: req.stream,
            deadline_ms: req.deadline_ms.or(opts.default_deadline_ms),
            arrived: Instant::now(),
            problem: req.problem,
        };
        if tx.send(Event::Admit(Box::new(admit))).is_err() {
            return Ok(());
        }
    }
}

/// Run the fleet request loop until `input` reaches EOF, then drain
/// (bounded by `drain_timeout_ms`) and return the session counters.
/// Spawn failure at startup is [`CliError::WorkerSpawn`] (exit code 9).
///
/// All accounting flows through `registry`: the same `aa_serve_*` family
/// as single-process serve for request-level counts, plus the
/// front-end's `aa_fleet_*` route/retry/handoff counters and the
/// per-worker `aa_fleet_*{worker=…}` series.
pub fn run_fleet_serve<R: BufRead, W: Write + Send>(
    input: R,
    output: W,
    opts: &FleetOpts,
    registry: &aa_obs::Registry,
) -> Result<ServeCounters, CliError> {
    let out = Mutex::new(output);
    let metrics = ServeMetrics::with_slo_target(
        registry,
        opts.slo_p99_ms.unwrap_or(DEFAULT_SLO_P99_MS).saturating_mul(1000),
    );
    let (tx, rx) = mpsc::channel::<Event>();
    std::thread::scope(|s| -> Result<(), CliError> {
        let core = FleetCore::new(opts, registry, &out, &metrics, tx.clone())?;
        let event_loop = s.spawn(move || core.run(&rx));
        let read_result = fleet_reader_loop(input, &tx, &out, &metrics, opts);
        let _ = tx.send(Event::Eof);
        drop(tx);
        event_loop.join().expect("fleet event loop does not panic");
        read_result.map_err(CliError::Io)
    })?;
    Ok(metrics.snapshot())
}

// ---------------------------------------------------------------------------
// Chaos driver
// ---------------------------------------------------------------------------

/// A [`BufRead`] fed line-by-line from a channel — the chaos driver's
/// end of the fleet's stdin.
struct LineSource {
    rx: Receiver<String>,
    buf: Vec<u8>,
    pos: usize,
}

impl LineSource {
    fn new(rx: Receiver<String>) -> Self {
        LineSource { rx, buf: Vec::new(), pos: 0 }
    }
}

impl Read for LineSource {
    fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
        let n = {
            let chunk = self.fill_buf()?;
            let n = chunk.len().min(out.len());
            out[..n].copy_from_slice(&chunk[..n]);
            n
        };
        self.consume(n);
        Ok(n)
    }
}

impl BufRead for LineSource {
    fn fill_buf(&mut self) -> std::io::Result<&[u8]> {
        if self.pos >= self.buf.len() {
            match self.rx.recv() {
                Ok(line) => {
                    self.buf = line.into_bytes();
                    self.buf.push(b'\n');
                    self.pos = 0;
                }
                Err(_) => {
                    // Sender dropped: EOF.
                    self.buf.clear();
                    self.pos = 0;
                }
            }
        }
        Ok(&self.buf[self.pos..])
    }

    fn consume(&mut self, amt: usize) {
        self.pos = (self.pos + amt).min(self.buf.len());
    }
}

/// A [`Write`] that forwards complete lines into a channel — the
/// driver's end of the fleet's stdout.
struct LineSink {
    tx: Sender<String>,
    buf: Vec<u8>,
}

impl LineSink {
    fn new(tx: Sender<String>) -> Self {
        LineSink { tx, buf: Vec::new() }
    }
}

impl Write for LineSink {
    fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
        self.buf.extend_from_slice(data);
        while let Some(p) = self.buf.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = self.buf.drain(..=p).collect();
            let text = String::from_utf8_lossy(&line[..line.len() - 1]).into_owned();
            let _ = self.tx.send(text);
        }
        Ok(data.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Stream keys covering every worker `per` times under the fleet ring.
fn balanced_streams(workers: usize, per: usize) -> Vec<u64> {
    let ring = Ring::new(workers);
    let mut need = vec![per; workers];
    let mut out = Vec::with_capacity(workers * per);
    let mut key = 0u64;
    while out.len() < workers * per && key < 1_000_000 {
        if let Some(w) = ring.owner(key) {
            if need[w] > 0 {
                need[w] -= 1;
                out.push(key);
            }
        }
        key += 1;
    }
    out
}

/// Deterministic per-stream problem: one fixed problem per stream (the
/// same every round, so worker warm state is exercised and the expected
/// utility bits are a pure function of `(seed, stream)`).
fn stream_problem(seed: u64, stream: u64) -> ProblemFile {
    let mut state = splitmix64(seed ^ stream.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    let mut next = move || {
        state = splitmix64(state);
        state
    };
    let capacity = 64.0;
    let servers = 2 + (next() % 2) as usize;
    let thread_count = 4 + (next() % 3) as usize;
    let threads = (0..thread_count)
        .map(|_| {
            let r = next();
            #[allow(clippy::cast_precision_loss)]
            let scale = 1.0 + (r % 8) as f64 * 0.5;
            #[allow(clippy::cast_precision_loss)]
            let shape = 0.1 * ((r >> 8) % 4) as f64;
            if r % 2 == 0 {
                UtilitySpec::Power { scale, beta: 0.3 + shape, cap: capacity }
            } else {
                UtilitySpec::Log { scale, rate: 0.5 + shape, cap: capacity }
            }
        })
        .collect();
    ProblemFile { servers, capacity, threads }
}

/// One request line the chaos driver sends.
#[derive(Serialize)]
struct ChaosRequestLine {
    id: u64,
    stream: u64,
    problem: ProblemFile,
}

/// Parse one fleet response line into an observation (plus the
/// answering worker, when the line carries one).
fn parse_chaos_line(line: &str, seq_stream: &[u64]) -> Option<(FleetObservation, Option<usize>)> {
    let v = serde_json::from_str::<serde_json::Value>(line).ok()?;
    let seq = v.get("id")?.as_u64()?;
    #[allow(clippy::cast_possible_truncation)]
    let stream = *seq_stream.get(seq as usize)?;
    let status = v.get("status")?.as_str()?.to_string();
    let ok = status == "ok";
    let class = if ok {
        String::new()
    } else {
        v.get("class")
            .and_then(serde_json::Value::as_str)
            .unwrap_or(&status)
            .to_string()
    };
    let utility_bits = if ok { v.get("utility")?.as_f64()?.to_bits() } else { 0 };
    #[allow(clippy::cast_possible_truncation)]
    let attempts = v.get("attempts").and_then(serde_json::Value::as_u64).unwrap_or(1) as u32;
    let solve_micros = v
        .get("solve_micros")
        .and_then(serde_json::Value::as_u64)
        .unwrap_or(0);
    #[allow(clippy::cast_possible_truncation)]
    let worker = v.get("worker").and_then(serde_json::Value::as_u64).map(|w| w as usize);
    Some((
        FleetObservation { seq, stream, ok, class, utility_bits, attempts, solve_micros },
        worker,
    ))
}

/// The fast deterministic ladder both the chaos workers and the
/// single-process reference solve use.
fn chaos_ladder() -> Vec<Tier> {
    vec![Tier::Algo2, Tier::Uu]
}

/// Drive a real multi-process fleet through a seeded fault storm and
/// fold the observations into the deterministic verdict.
///
/// The front-end runs in-process (sharing a private metrics registry
/// with the driver); the workers are genuine child processes re-execed
/// from the current binary, so kills, stalls, and garbage frames
/// exercise the real pipes-and-supervision path. Call this from the
/// `aa-solve` binary only — a foreign `current_exe` has no
/// `serve-worker` mode.
pub fn run_fleet_chaos(cfg: &FleetChaosConfig) -> Result<FleetChaosReport, CliError> {
    let plan = ProcessChaosPlan::from_config(cfg);
    let streams = balanced_streams(cfg.workers, cfg.streams_per_worker);
    let files: Vec<ProblemFile> = streams.iter().map(|&s| stream_problem(cfg.seed, s)).collect();

    // Single-process reference: the same ladder, unlimited budget, cold
    // solve (warm and cold are bit-identical by the tiered contract, so
    // this pins the fleet's answers bit-for-bit).
    let mut reference_bits = HashMap::new();
    for (file, &stream) in files.iter().zip(&streams) {
        let problem = build_problem(file)?;
        let solver = TieredSolver::with_ladder(chaos_ladder());
        let solve = solver.try_solve_within_caught(&problem, &Budget::unlimited(), None)?;
        reference_bits.insert(stream, solve.utility.to_bits());
    }

    let opts = FleetOpts {
        workers: cfg.workers,
        queue: streams.len().max(4),
        // Tight heartbeats so scheduled stalls (stall_millis, default
        // 2000 ms) blow the 150 ms × 4 tolerance fast, while
        // microsecond-scale solves never miss one.
        heartbeat_ms: 150,
        heartbeat_miss_limit: 4,
        max_retries: 6,
        // A storm must never retire a worker: every scheduled fault is
        // supposed to end in a restart.
        max_restarts: u64::MAX - 1,
        ladder: Some(chaos_ladder()),
        seed: cfg.seed,
        slo_p99_ms: Some((cfg.slo_p99_micros / 1000).max(1)),
        chaos: Some(plan.clone()),
        ..FleetOpts::default()
    };
    let registry = aa_obs::Registry::new();
    let (tx_in, rx_in) = mpsc::channel::<String>();
    let (tx_out, rx_out) = mpsc::channel::<String>();

    let mut completions: Vec<FleetObservation> = Vec::new();
    let mut survived = true;
    let mut rebalanced = true;
    let mut admitted = 0u64;
    let mut seq_stream: Vec<u64> = Vec::new();
    let response_timeout = Duration::from_secs(60);

    let serve_result = std::thread::scope(|s| {
        let handle = s.spawn(|| {
            run_fleet_serve(LineSource::new(rx_in), LineSink::new(tx_out), &opts, &registry)
        });

        let send_round =
            |admitted: &mut u64, seq_stream: &mut Vec<u64>| -> bool {
                for (file, &stream) in files.iter().zip(&streams) {
                    let line = ChaosRequestLine { id: *admitted, stream, problem: file.clone() };
                    let json = serde_json::to_string(&line).expect("requests serialize");
                    if tx_in.send(json).is_err() {
                        return false;
                    }
                    seq_stream.push(stream);
                    *admitted += 1;
                }
                true
            };

        // Closed-loop storm: one request per stream per round, wait for
        // the full round before the next, so parked/outstanding state
        // never exceeds one request per stream.
        'rounds: for _ in 0..cfg.rounds {
            if !send_round(&mut admitted, &mut seq_stream) {
                survived = false;
                break;
            }
            for _ in 0..streams.len() {
                match rx_out.recv_timeout(response_timeout) {
                    Ok(line) => {
                        if let Some((obs, _)) = parse_chaos_line(&line, &seq_stream) {
                            completions.push(obs);
                        }
                    }
                    Err(_) => {
                        survived = false;
                        break 'rounds;
                    }
                }
            }
        }

        // Quiesce: the storm is over once every worker is back up.
        if survived {
            let deadline = Instant::now() + Duration::from_secs(30);
            loop {
                let all_up = (0..cfg.workers).all(|w| {
                    registry
                        .gauge_labeled("aa_fleet_worker_up", "worker", &w.to_string())
                        .get()
                        == 1.0
                });
                if all_up {
                    break;
                }
                if Instant::now() >= deadline {
                    survived = false;
                    break;
                }
                std::thread::sleep(Duration::from_millis(20));
            }
        }

        // Probe round: with the fleet whole again, every stream must
        // route back to its ring owner (rebalance after recovery).
        if survived && send_round(&mut admitted, &mut seq_stream) {
            let ring = Ring::new(cfg.workers);
            for _ in 0..streams.len() {
                match rx_out.recv_timeout(response_timeout) {
                    Ok(line) => {
                        if let Some((obs, worker)) = parse_chaos_line(&line, &seq_stream) {
                            if worker != ring.owner(obs.stream) {
                                rebalanced = false;
                            }
                            completions.push(obs);
                        }
                    }
                    Err(_) => {
                        survived = false;
                        break;
                    }
                }
            }
        }

        drop(tx_in);
        handle.join().expect("fleet serve thread does not panic")
    });
    serve_result?;

    let restarts = (0..cfg.workers)
        .map(|w| {
            registry
                .counter_labeled("aa_fleet_restarts_total", "worker", &w.to_string())
                .get()
        })
        .collect();
    // SLO accounting is complete iff the burn-rate tracker observed
    // every completion the loop answered.
    let slo_tracked =
        registry.counter("aa_slo_good_total").get() + registry.counter("aa_slo_breach_total").get();
    let observations = FleetObservations {
        admitted,
        completions,
        restarts,
        survived,
        rebalanced,
        slo_tracked,
        reference_bits,
    };
    Ok(analyze_fleet(cfg, &plan, &observations))
}

#[cfg(test)]
mod tests {
    use super::*;
    use aa_sim::ProcessFault;

    #[test]
    fn ladders_parse_by_stable_names() {
        assert_eq!(
            parse_ladder("exact-bb, algo2-refined,algo2,uu").unwrap(),
            vec![Tier::BranchAndBound, Tier::Algo2Refined, Tier::Algo2, Tier::Uu]
        );
        assert_eq!(parse_ladder("algo2,uu").unwrap(), chaos_ladder());
        assert!(parse_ladder("algo3").is_err());
        assert!(parse_ladder("").is_err());
        // Round-trip: every tier's name parses back to itself.
        for tier in [Tier::BranchAndBound, Tier::Algo2Refined, Tier::Algo2, Tier::Price, Tier::Uu] {
            assert_eq!(parse_ladder(tier.name()).unwrap(), vec![tier]);
        }
    }

    #[test]
    fn worker_args_carry_ladder_and_chaos_schedule() {
        let plan = ProcessChaosPlan { faults: vec![vec![(5, ProcessFault::Kill)], vec![]] };
        let opts = FleetOpts {
            workers: 2,
            ladder: Some(vec![Tier::Algo2, Tier::Uu]),
            chaos: Some(plan),
            ..FleetOpts::default()
        };
        let args = worker_args(&opts, 0, 5);
        assert_eq!(args[0], "serve-worker");
        let ladder_at = args.iter().position(|a| a == "--ladder").expect("ladder flag");
        assert_eq!(args[ladder_at + 1], "algo2,uu");
        assert_eq!(parse_ladder(&args[ladder_at + 1]).unwrap(), vec![Tier::Algo2, Tier::Uu]);
        let faults_at = args.iter().position(|a| a == "--chaos-faults").expect("chaos flag");
        let parsed: Vec<(u64, ProcessFault)> =
            serde_json::from_str(&args[faults_at + 1]).expect("schedule round-trips");
        assert_eq!(parsed, vec![(5, ProcessFault::Kill)]);
        let off_at = args.iter().position(|a| a == "--chaos-offset").expect("offset flag");
        assert_eq!(args[off_at + 1], "5");

        // Worker 1 has no scheduled faults: no chaos flags at all.
        let args1 = worker_args(&opts, 1, 0);
        assert!(!args1.iter().any(|a| a == "--chaos-faults"));
        // No chaos configured: plain argv, and no span shipping unless
        // the front-end is tracing.
        let plain = worker_args(&FleetOpts::default(), 0, 0);
        assert!(!plain
            .iter()
            .any(|a| a == "--chaos-faults" || a == "--ladder" || a == "--obs-spans"));
        let traced = worker_args(
            &FleetOpts { trace: Some(PathBuf::from("t.json")), ..FleetOpts::default() },
            0,
            0,
        );
        assert!(traced.iter().any(|a| a == "--obs-spans"));
    }

    #[test]
    fn retired_worker_stops_exporting_as_live() {
        let registry = aa_obs::Registry::new();
        let fm = FleetMetrics::new(&registry, 2);
        fm.per_worker[1].up.set(1.0);
        // Worker 1 federated a solve histogram before retiring.
        let snap = {
            let worker_side = aa_obs::Registry::new();
            worker_side.histogram("aa_worker_solve_micros").record_micros(25);
            worker_side.to_federated()
        };
        registry.merge_worker_snapshot("1", snap);
        let before = aa_obs::export::prometheus_text(&registry);
        assert!(before.contains("aa_fleet_worker_up{worker=\"1\"} 1"), "{before}");
        assert!(before.contains("aa_worker_solve_micros_count{worker=\"1\"} 1"), "{before}");

        retire_worker_export(&registry, &fm, 1);
        let after = aa_obs::export::prometheus_text(&registry);
        // The up gauge pins to 0 and the worker's federated series are
        // gone — a retired worker never re-exports as live.
        assert!(after.contains("aa_fleet_worker_up{worker=\"1\"} 0"), "{after}");
        assert!(!after.contains("aa_worker_solve_micros_count{worker=\"1\"}"), "{after}");
        assert!(!after.contains("worker=\"fleet\""), "{after}");
        // Out-of-range slots are a no-op, not a panic.
        retire_worker_export(&registry, &fm, 9);
    }

    #[test]
    fn balanced_streams_cover_every_worker() {
        let streams = balanced_streams(4, 2);
        assert_eq!(streams.len(), 8);
        let ring = Ring::new(4);
        let mut per_worker = vec![0usize; 4];
        for &s in &streams {
            per_worker[ring.owner(s).unwrap()] += 1;
        }
        assert_eq!(per_worker, vec![2, 2, 2, 2]);
        // Deterministic.
        assert_eq!(streams, balanced_streams(4, 2));
    }

    #[test]
    fn stream_problems_are_deterministic_and_valid() {
        for stream in balanced_streams(3, 2) {
            let a = stream_problem(2016, stream);
            let b = stream_problem(2016, stream);
            assert_eq!(a, b, "same (seed, stream) must give the same problem");
            build_problem(&a).expect("generated problems validate");
        }
        assert_ne!(stream_problem(2016, 0), stream_problem(2017, 0));
    }

    #[test]
    fn line_source_and_sink_round_trip() {
        let (tx, rx) = mpsc::channel();
        tx.send("hello".to_string()).unwrap();
        tx.send("world".to_string()).unwrap();
        drop(tx);
        let mut src = LineSource::new(rx);
        let mut text = String::new();
        src.read_to_string(&mut text).unwrap();
        assert_eq!(text, "hello\nworld\n");

        let (tx, rx) = mpsc::channel();
        let mut sink = LineSink::new(tx);
        // Split writes reassemble into whole lines.
        sink.write_all(b"one li").unwrap();
        sink.write_all(b"ne\ntwo\n").unwrap();
        assert_eq!(rx.try_recv().unwrap(), "one line");
        assert_eq!(rx.try_recv().unwrap(), "two");
        assert!(rx.try_recv().is_err());
    }

    #[test]
    fn chaos_lines_parse_into_observations() {
        let seq_stream = vec![7u64, 9u64];
        let ok_line = r#"{"status":"ok","id":1,"tier":"algo2","degraded":false,"utility":2.5,"server":[0],"allocation":[4.0],"latency_ms":0.3,"worker":2,"attempts":3,"solve_micros":41}"#;
        let (obs, worker) = parse_chaos_line(ok_line, &seq_stream).expect("parses");
        assert_eq!(
            (obs.seq, obs.stream, obs.ok, obs.attempts, obs.solve_micros, worker),
            (1, 9, true, 3, 41, Some(2))
        );
        assert_eq!(obs.utility_bits, 2.5f64.to_bits());

        let err_line = r#"{"status":"error","id":0,"class":"internal","error":"x"}"#;
        let (obs, worker) = parse_chaos_line(err_line, &seq_stream).expect("parses");
        assert_eq!((obs.seq, obs.stream, obs.ok, obs.utility_bits), (0, 7, false, 0));
        assert_eq!(obs.class, "internal");
        assert_eq!(worker, None);

        // Unknown id → dropped rather than misattributed.
        assert!(parse_chaos_line(r#"{"status":"ok","id":99}"#, &seq_stream).is_none());
    }
}
