//! Property tests for the file formats: any valid `UtilitySpec` survives
//! a JSON round-trip and builds a function identical to the original.

use aa_cli::{build_problem, solve_document, ProblemFile};
use aa_utility::{Utility, UtilitySpec};
use proptest::prelude::*;

fn any_spec(cap: f64) -> impl Strategy<Value = UtilitySpec> {
    prop_oneof![
        (0.0..20.0f64, 0.01..1.0f64)
            .prop_map(move |(scale, beta)| UtilitySpec::Power { scale, beta, cap }),
        (0.0..20.0f64, 0.0..5.0f64)
            .prop_map(move |(scale, rate)| UtilitySpec::Log { scale, rate, cap }),
        (0.0..20.0f64, 0.0..=1.0f64).prop_map(move |(slope, knee_frac)| {
            UtilitySpec::CappedLinear { slope, knee: knee_frac * cap, cap }
        }),
        (0.0..=1.0f64, 0.0..50.0f64, 0.0..50.0f64).prop_map(move |(frac, v, floor)| {
            UtilitySpec::Linearized { c_hat: frac * cap, v_hat: v, cap, floor }
        }),
        (0.001..50.0f64, 0.0..=1.0f64).prop_map(move |(v, w_frac)| {
            // The paper generator's exact shape.
            UtilitySpec::Pchip {
                points: vec![(0.0, 0.0), (cap / 2.0, v), (cap, v + w_frac * v)],
            }
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// JSON round-trip preserves the spec and the built function.
    #[test]
    fn spec_json_round_trip(spec in any_spec(50.0)) {
        let json = serde_json::to_string(&spec).unwrap();
        let back: UtilitySpec = serde_json::from_str(&json).unwrap();
        let f1 = spec.build().unwrap();
        let f2 = back.build().unwrap();
        for k in 0..=16 {
            let x = 50.0 * k as f64 / 16.0;
            // JSON moves floats by at most an ulp; values follow suit.
            prop_assert!((f1.value(x) - f2.value(x)).abs() <= 1e-9 * f1.value(x).abs().max(1.0));
        }
    }

    /// Whole problem files parse, build, and solve end to end.
    #[test]
    fn problem_files_solve(
        specs in prop::collection::vec(any_spec(50.0), 1..10),
        servers in 1usize..4,
    ) {
        let file = ProblemFile { servers, capacity: 50.0, threads: specs };
        let json = serde_json::to_string(&file).unwrap();

        // build_problem accepts it…
        let parsed: ProblemFile = serde_json::from_str(&json).unwrap();
        let p = build_problem(&parsed).unwrap();
        prop_assert_eq!(p.len(), parsed.threads.len());

        // …and the driver solves it within the guarantee.
        let sol = solve_document(&json, "algo2", 0).unwrap();
        prop_assert!(sol.bound_ratio >= aa_core::ALPHA - 1e-6);
        prop_assert!(sol.bound_ratio <= 1.0 + 1e-6);
        prop_assert_eq!(sol.server.len(), parsed.threads.len());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The shed-response backoff hint is strictly positive (a shed
    /// client is never told to retry immediately) and monotone
    /// non-decreasing in queue depth (a deeper backlog never shortens
    /// the hint).
    #[test]
    fn drain_hint_positive_and_monotone_in_queue(
        answered in 0u64..100_000,
        total_micros in 0u64..10_000_000_000,
        q1 in 0usize..100_000,
        q2 in 0usize..100_000,
    ) {
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let hint_lo = aa_cli::serve::drain_hint_ms(answered, total_micros, lo);
        let hint_hi = aa_cli::serve::drain_hint_ms(answered, total_micros, hi);
        prop_assert!(hint_lo >= 1, "zero backoff hint at queue={lo}");
        prop_assert!(hint_hi >= 1, "zero backoff hint at queue={hi}");
        prop_assert!(
            hint_lo <= hint_hi,
            "hint regressed: queue {lo} -> {hint_lo} ms but queue {hi} -> {hint_hi} ms"
        );
    }
}
