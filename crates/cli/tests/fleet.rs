//! End-to-end tests of `aa-solve serve --fleet`: real worker processes
//! spawned from the compiled binary, supervised over pipes.

use std::io::Write;
use std::process::{Command, Stdio};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_aa-solve"))
}

fn tempdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("aa-fleet-test-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// One request line; `salt` varies the problem deterministically.
fn request(id: u64, stream: Option<u64>, salt: u64) -> String {
    let threads: Vec<String> = (0..3 + salt % 3)
        .map(|i| {
            let scale = 1 + (salt + i) % 5;
            if (salt + i) % 2 == 0 {
                format!(r#"{{"kind":"power","scale":{scale}.0,"beta":0.5,"cap":64.0}}"#)
            } else {
                format!(r#"{{"kind":"log","scale":{scale}.0,"rate":0.7,"cap":64.0}}"#)
            }
        })
        .collect();
    let problem = format!(
        r#"{{"servers":{},"capacity":64.0,"threads":[{}]}}"#,
        2 + salt % 2,
        threads.join(",")
    );
    match stream {
        Some(s) => format!(r#"{{"id":{id},"stream":{s},"problem":{problem}}}"#),
        None => format!(r#"{{"id":{id},"problem":{problem}}}"#),
    }
}

/// Run a serve invocation over the given stdin lines, returning stdout
/// lines parsed as JSON.
fn run_serve(args: &[&str], lines: &[String]) -> Vec<serde_json::Value> {
    let mut child = bin()
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("binary spawns");
    {
        let mut stdin = child.stdin.take().unwrap();
        for line in lines {
            writeln!(stdin, "{line}").unwrap();
        }
    }
    let out = child.wait_with_output().expect("binary runs");
    assert!(
        out.status.success(),
        "serve {args:?} exited {:?}",
        out.status.code()
    );
    String::from_utf8(out.stdout)
        .unwrap()
        .lines()
        .map(|l| serde_json::from_str(l).expect("every output line is JSON"))
        .collect()
}

#[test]
fn fleet_answers_are_bit_identical_to_single_process_serve() {
    let lines: Vec<String> = (0..12)
        .map(|i| request(i, if i % 3 == 0 { None } else { Some(i % 5) }, i))
        .collect();
    let single = run_serve(&["serve"], &lines);
    let fleet = run_serve(&["serve", "--fleet", "3"], &lines);
    assert_eq!(single.len(), 12);
    assert_eq!(fleet.len(), 12);

    let by_id = |resps: &[serde_json::Value], id: u64| -> serde_json::Value {
        resps
            .iter()
            .find(|r| r.get("id").and_then(|v| v.as_u64()) == Some(id))
            .unwrap_or_else(|| panic!("no response for id {id}"))
            .clone()
    };
    for id in 0..12 {
        let s = by_id(&single, id);
        let f = by_id(&fleet, id);
        assert_eq!(s["status"].as_str(), Some("ok"), "single {s:?}");
        assert_eq!(f["status"].as_str(), Some("ok"), "fleet {f:?}");
        assert_eq!(
            s["utility"].as_f64().unwrap().to_bits(),
            f["utility"].as_f64().unwrap().to_bits(),
            "utility bits diverge for id {id}"
        );
        assert_eq!(s["server"], f["server"], "assignment diverges for id {id}");
        let sa: Vec<u64> = s["allocation"]
            .as_array()
            .unwrap()
            .iter()
            .map(|v| v.as_f64().unwrap().to_bits())
            .collect();
        let fa: Vec<u64> = f["allocation"]
            .as_array()
            .unwrap()
            .iter()
            .map(|v| v.as_f64().unwrap().to_bits())
            .collect();
        assert_eq!(sa, fa, "allocation bits diverge for id {id}");
        assert_eq!(s["tier"], f["tier"], "tier diverges for id {id}");
        // Fleet-only routing fields.
        assert!(f["worker"].as_u64().is_some());
        assert!(f["attempts"].as_u64().unwrap() >= 1);
        assert!(f["solve_micros"].as_u64().is_some());
    }
}

#[test]
fn resize_control_acks_and_fleet_keeps_serving() {
    let lines = vec![
        request(1, Some(9), 1),
        r#"{"control":"resize","fleet":4,"id":"grow"}"#.to_string(),
        request(2, Some(9), 2),
        r#"{"control":"resize","fleet":1,"id":"shrink"}"#.to_string(),
        request(3, Some(9), 3),
        r#"{"control":"resize","fleet":0,"id":"bad"}"#.to_string(),
        r#"{"control":"noop"}"#.to_string(),
    ];
    let resps = run_serve(&["serve", "--fleet", "2"], &lines);
    assert_eq!(resps.len(), 7);
    let find = |pred: &dyn Fn(&serde_json::Value) -> bool| {
        resps.iter().find(|r| pred(r)).cloned().unwrap_or_else(|| {
            panic!("missing expected response in {resps:?}")
        })
    };
    let grow = find(&|r| r["id"] == "grow");
    assert_eq!(grow["status"].as_str(), Some("resized"));
    assert_eq!(grow["fleet"].as_u64(), Some(4));
    assert_eq!(grow["was"].as_u64(), Some(2));
    let shrink = find(&|r| r["id"] == "shrink");
    assert_eq!(shrink["fleet"].as_u64(), Some(1));
    assert_eq!(shrink["was"].as_u64(), Some(4));
    let bad = find(&|r| r["id"] == "bad");
    assert_eq!(bad["status"].as_str(), Some("error"));
    assert_eq!(bad["class"].as_str(), Some("control"));
    let noop = find(&|r| r["class"].as_str() == Some("control") && matches!(r["id"], serde_json::Value::Null));
    assert_eq!(noop["status"].as_str(), Some("error"));
    for id in 1..=3u64 {
        let r = find(&|r| r["id"].as_u64() == Some(id));
        assert_eq!(r["status"].as_str(), Some("ok"), "id {id}: {r:?}");
    }
}

#[test]
fn worker_spawn_failure_exits_9() {
    let mut child = bin()
        .args(["serve", "--fleet", "2", "--worker-cmd", "/nonexistent/worker-binary"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    drop(child.stdin.take());
    let out = child.wait_with_output().unwrap();
    assert_eq!(out.status.code(), Some(9), "spawn failure must exit 9");
}

#[test]
fn malformed_worker_frames_count_as_a_crash_and_replay() {
    let dir = tempdir("garbage");
    let marker = dir.join("first-run-done");
    let _ = std::fs::remove_file(&marker);
    let stub = dir.join("stub-worker.sh");
    // First incarnation emits a garbage frame and exits; every later one
    // execs the real worker. The front-end must treat the garbage as a
    // crash, restart, and still answer every request.
    std::fs::write(
        &stub,
        format!(
            "#!/bin/sh\n\
             if [ ! -e {marker} ]; then\n\
               touch {marker}\n\
               echo 'this is not a frame'\n\
               exit 0\n\
             fi\n\
             exec {real} \"$@\"\n",
            marker = marker.display(),
            real = env!("CARGO_BIN_EXE_aa-solve"),
        ),
    )
    .unwrap();
    #[cfg(unix)]
    {
        use std::os::unix::fs::PermissionsExt;
        std::fs::set_permissions(&stub, std::fs::Permissions::from_mode(0o755)).unwrap();
    }
    let dump = dir.join("metrics.json");
    let lines = vec![request(1, Some(3), 1), request(2, Some(3), 2)];
    let resps = run_serve(
        &[
            "serve",
            "--fleet",
            "1",
            "--worker-cmd",
            stub.to_str().unwrap(),
            "--metrics-dump",
            dump.to_str().unwrap(),
        ],
        &lines,
    );
    assert!(marker.exists(), "the garbage incarnation must have run");
    assert_eq!(resps.len(), 2);
    for r in &resps {
        assert_eq!(r["status"].as_str(), Some("ok"), "request lost to garbage worker: {r:?}");
    }
    let metrics = std::fs::read_to_string(&dump).unwrap();
    assert!(
        metrics.contains("aa_fleet_restarts_total"),
        "restart counter missing from metrics dump"
    );
}

#[test]
fn shutdown_drain_answers_stuck_requests_with_shutdown_class() {
    let dir = tempdir("drain");
    let stub = dir.join("mute-worker.sh");
    // A worker that never speaks: requests can never be answered, so
    // EOF + drain timeout must flush them as retryable shutdown errors.
    std::fs::write(&stub, "#!/bin/sh\nexec sleep 1000\n").unwrap();
    #[cfg(unix)]
    {
        use std::os::unix::fs::PermissionsExt;
        std::fs::set_permissions(&stub, std::fs::Permissions::from_mode(0o755)).unwrap();
    }
    let lines = vec![request(1, Some(1), 1), request(2, None, 2)];
    let resps = run_serve(
        &[
            "serve",
            "--fleet",
            "1",
            "--worker-cmd",
            stub.to_str().unwrap(),
            "--drain-timeout-ms",
            "200",
        ],
        &lines,
    );
    assert_eq!(resps.len(), 2);
    for r in &resps {
        assert_eq!(r["status"].as_str(), Some("error"), "{r:?}");
        assert_eq!(r["class"].as_str(), Some("shutdown"), "{r:?}");
    }
}

#[test]
fn fleet_chaos_reports_are_deterministic_and_healthy() {
    let run = || {
        let out = bin()
            .args([
                "chaos", "--fleet", "--rounds", "25", "--kills", "2", "--stalls", "1",
                "--seed", "99",
            ])
            .stderr(Stdio::null())
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "fleet chaos gate failed: {}",
            String::from_utf8_lossy(&out.stdout)
        );
        out.stdout
    };
    let first = run();
    let second = run();
    assert_eq!(
        first, second,
        "same seed must produce a byte-identical chaos report"
    );
    let report: serde_json::Value = serde_json::from_slice(&first).unwrap();
    assert_eq!(report["exactly_once"].as_bool(), Some(true));
    assert_eq!(report["rebalanced"].as_bool(), Some(true));
    assert_eq!(report["outputs_identical"].as_bool(), Some(true));
    let restarts: Vec<u64> = report["restarts"]
        .as_array()
        .unwrap()
        .iter()
        .map(|v| v.as_u64().unwrap())
        .collect();
    assert!(restarts.iter().sum::<u64>() >= 3, "storm must have restarted workers");
}

#[test]
fn traced_fleet_answers_are_bit_identical_to_untraced() {
    let dir = tempdir("traced");
    let trace = dir.join("trace.json");
    let dump = dir.join("metrics.json");
    // Distinct streams so the storm of spans comes from several workers.
    let lines: Vec<String> = (0..16).map(|i| request(i, Some(i), i)).collect();
    let plain = run_serve(&["serve", "--fleet", "3", "--seed", "7"], &lines);
    let traced = run_serve(
        &[
            "serve", "--fleet", "3", "--seed", "7",
            "--trace", trace.to_str().unwrap(),
            "--metrics-dump", dump.to_str().unwrap(),
            "--slo-p99-ms", "500",
        ],
        &lines,
    );
    assert_eq!(plain.len(), 16);
    assert_eq!(traced.len(), 16);
    let by_id = |resps: &[serde_json::Value], id: u64| -> serde_json::Value {
        resps
            .iter()
            .find(|r| r.get("id").and_then(|v| v.as_u64()) == Some(id))
            .unwrap_or_else(|| panic!("no response for id {id}"))
            .clone()
    };
    for id in 0..16 {
        let p = by_id(&plain, id);
        let t = by_id(&traced, id);
        assert_eq!(p["status"].as_str(), Some("ok"), "plain {p:?}");
        assert_eq!(t["status"].as_str(), Some("ok"), "traced {t:?}");
        // Observability must never perturb the answer: utility and
        // allocation bits, assignment, and tier are all byte-equal.
        assert_eq!(
            p["utility"].as_f64().unwrap().to_bits(),
            t["utility"].as_f64().unwrap().to_bits(),
            "utility bits diverge under --trace for id {id}"
        );
        let bits = |r: &serde_json::Value| -> Vec<u64> {
            r["allocation"]
                .as_array()
                .unwrap()
                .iter()
                .map(|v| v.as_f64().unwrap().to_bits())
                .collect()
        };
        assert_eq!(bits(&p), bits(&t), "allocation bits diverge for id {id}");
        assert_eq!(p["server"], t["server"], "assignment diverges for id {id}");
        assert_eq!(p["tier"], t["tier"], "tier diverges for id {id}");
        // NOT compared: "worker" — stream ranges hash over the workers
        // that are up at dispatch time, so routing is timing-dependent
        // (the answer bits above must not be).
    }

    // The merged trace holds every front-end request span, and worker
    // solve spans from a real (non-front-end) pid link under them.
    let doc: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&trace).unwrap()).unwrap();
    let events = doc["traceEvents"].as_array().unwrap();
    let request_ids: Vec<u64> = events
        .iter()
        .filter(|e| e["ph"] == "X" && e["name"] == "request")
        .map(|e| e["args"]["id"].as_u64().unwrap())
        .collect();
    assert_eq!(request_ids.len(), 16, "one request span per admitted request");
    let linked_roots = events
        .iter()
        .filter(|e| {
            e["ph"] == "X"
                && e["name"] == "fleet_solve"
                && e["pid"].as_u64() != Some(1)
                && request_ids.contains(&e["args"]["parent"].as_u64().unwrap())
        })
        .count();
    assert_eq!(linked_roots, 16, "every worker solve links under its request span");

    // The metrics dump federates worker series (worker= label) and the
    // SLO layer tracked every completion against the configured target.
    let metrics = std::fs::read_to_string(&dump).unwrap();
    assert!(metrics.contains("worker=\\\"fleet\\\"") || metrics.contains("worker=\"fleet\""),
        "metrics dump is missing the worker=\"fleet\" aggregate");
    assert!(metrics.contains("aa_slo_target_p99_micros"), "missing SLO target gauge");
    assert!(metrics.contains("aa_slo_e2e_micros"), "missing per-class e2e histograms");
}

#[test]
fn help_documents_fleet_flags_and_exit_code_9() {
    let out = bin().arg("help").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for needle in [
        "--fleet",
        "--heartbeat-ms",
        "--max-retries",
        "--drain-timeout-ms",
        "--worker-cmd",
        "9  fleet worker failed to spawn",
        "\"control\":\"resize\"",
        "--stall-millis",
    ] {
        assert!(text.contains(needle), "help is missing {needle:?}:\n{text}");
    }
}
