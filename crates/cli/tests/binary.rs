//! True end-to-end tests of the `aa-solve` binary: spawn the compiled
//! executable, round-trip JSON through temp files, check exit codes.

use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_aa-solve"))
}

fn tempdir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("aa-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn generate_then_solve_pipeline() {
    let dir = tempdir();
    let problem_path = dir.join("problem.json");

    let gen = bin()
        .args([
            "generate", "--servers", "3", "--beta", "4", "--capacity", "100",
            "--dist", "powerlaw", "--alpha", "2.5", "--seed", "11",
        ])
        .output()
        .expect("binary runs");
    assert!(gen.status.success(), "{}", String::from_utf8_lossy(&gen.stderr));
    std::fs::write(&problem_path, &gen.stdout).unwrap();

    let solve = bin()
        .args(["solve", problem_path.to_str().unwrap(), "--solver", "algo2"])
        .output()
        .expect("binary runs");
    assert!(solve.status.success(), "{}", String::from_utf8_lossy(&solve.stderr));

    let solution: serde_json::Value = serde_json::from_slice(&solve.stdout).unwrap();
    assert_eq!(solution["solver"], "algo2");
    assert_eq!(solution["server"].as_array().unwrap().len(), 12);
    let ratio = solution["bound_ratio"].as_f64().unwrap();
    assert!((0.828..=1.0 + 1e-9).contains(&ratio), "ratio {ratio}");

    // The human summary goes to stderr so stdout stays machine-parsable.
    let err = String::from_utf8_lossy(&solve.stderr);
    assert!(err.contains("ratio="), "missing summary: {err}");
}

#[test]
fn solver_list_and_each_solver_runs() {
    let list = bin().arg("solvers").output().unwrap();
    assert!(list.status.success());
    let names: Vec<String> = String::from_utf8_lossy(&list.stdout)
        .lines()
        .map(str::to_string)
        .collect();
    assert!(names.contains(&"algo2".to_string()));
    assert!(names.contains(&"exact".to_string()));

    // A tiny problem every solver (even exact) can handle.
    let dir = tempdir();
    let path = dir.join("tiny.json");
    let gen = bin()
        .args(["generate", "--servers", "2", "--beta", "2", "--capacity", "10", "--seed", "3"])
        .output()
        .unwrap();
    std::fs::write(&path, &gen.stdout).unwrap();
    for name in &names {
        let out = bin()
            .args(["solve", path.to_str().unwrap(), "--solver", name])
            .output()
            .unwrap();
        assert!(out.status.success(), "{name} failed");
    }
}

#[test]
fn churn_with_generated_script() {
    let dir = tempdir();
    let path = dir.join("churn-gen.json");
    let gen = bin()
        .args(["generate", "--servers", "3", "--beta", "3", "--capacity", "50", "--seed", "7"])
        .output()
        .unwrap();
    std::fs::write(&path, &gen.stdout).unwrap();

    let out = bin()
        .args([
            "churn", path.to_str().unwrap(), "--epochs", "8", "--seed", "42",
            "--policy", "migrations", "--budget", "3",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let report: serde_json::Value = serde_json::from_slice(&out.stdout).unwrap();
    assert_eq!(report["epochs"].as_array().unwrap().len(), 8);
    let mean = report["mean_retention"].as_f64().unwrap();
    assert!(mean.is_finite() && mean > 0.0, "mean retention {mean}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("mean_retention="), "missing summary: {err}");
}

#[test]
fn churn_with_script_file() {
    let dir = tempdir();
    let problem_path = dir.join("churn-problem.json");
    let script_path = dir.join("churn-script.json");
    let gen = bin()
        .args(["generate", "--servers", "3", "--beta", "3", "--capacity", "50", "--seed", "9"])
        .output()
        .unwrap();
    std::fs::write(&problem_path, &gen.stdout).unwrap();
    std::fs::write(
        &script_path,
        r#"{
          "epochs": 6,
          "events": [
            {"kind": "server_down", "epoch": 1, "server": 2},
            {"kind": "thread_arrived", "epoch": 2,
             "utility": {"kind": "power", "scale": 2.0, "beta": 0.5, "cap": 50.0}},
            {"kind": "server_up", "epoch": 3},
            {"kind": "thread_departed", "epoch": 4, "thread": 0},
            {"kind": "capacity_changed", "epoch": 5, "capacity": 40.0}
          ]
        }"#,
    )
    .unwrap();

    let out = bin()
        .args([
            "churn", problem_path.to_str().unwrap(),
            "--script", script_path.to_str().unwrap(), "--pretty",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let report: serde_json::Value = serde_json::from_slice(&out.stdout).unwrap();
    assert_eq!(report["epochs"].as_array().unwrap().len(), 6);
}

#[test]
fn churn_rejects_unknown_policy() {
    let dir = tempdir();
    let path = dir.join("churn-policy.json");
    let gen = bin()
        .args(["generate", "--servers", "2", "--beta", "1", "--capacity", "10"])
        .output()
        .unwrap();
    std::fs::write(&path, &gen.stdout).unwrap();
    let out = bin()
        .args(["churn", path.to_str().unwrap(), "--policy", "hope"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("hope"));
}

#[test]
fn malformed_input_fails_cleanly() {
    let dir = tempdir();
    let path = dir.join("broken.json");
    std::fs::write(&path, "{ definitely not json").unwrap();
    let out = bin()
        .args(["solve", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("error"), "unhelpful stderr: {err}");
}

#[test]
fn unknown_solver_fails_with_hint() {
    let dir = tempdir();
    let path = dir.join("p.json");
    let gen = bin()
        .args(["generate", "--servers", "2", "--beta", "1", "--capacity", "10"])
        .output()
        .unwrap();
    std::fs::write(&path, &gen.stdout).unwrap();
    let out = bin()
        .args(["solve", path.to_str().unwrap(), "--solver", "magic"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("magic"));
}

#[test]
fn missing_command_prints_usage() {
    let out = bin().output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

#[test]
fn pretty_flag_pretty_prints() {
    let out = bin()
        .args(["generate", "--servers", "2", "--beta", "1", "--capacity", "5", "--pretty"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains('\n') && text.contains("  "), "not pretty-printed");
}

#[test]
fn bench_small_writes_valid_schema_with_matching_utilities() {
    let dir = tempdir();
    let out_path = dir.join("BENCH_solver.json");
    let out = bin()
        .args([
            "bench", "--small", "--reps", "1", "--seed", "5",
            "--out", out_path.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    // The human summary goes to stderr; the JSON goes to the file.
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("speedup="), "missing summary: {err}");

    let report: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&out_path).unwrap()).unwrap();
    assert_eq!(report["version"].as_u64(), Some(1));
    assert_eq!(report["solver"], "algo2");
    assert!(report["pool_threads"].as_u64().unwrap() >= 1);
    assert!(report["hardware_threads"].as_u64().unwrap() >= 1);
    assert_eq!(report["seed"].as_u64(), Some(5));

    let entries = report["entries"].as_array().unwrap();
    assert_eq!(entries.len(), 4, "four distributions in the small matrix");
    let mut dists: Vec<&str> = entries.iter().map(|e| e["dist"].as_str().unwrap()).collect();
    dists.sort_unstable();
    assert_eq!(dists, ["discrete", "normal", "powerlaw", "uniform"]);
    for e in entries {
        for field in [
            "seq_millis", "par_millis", "speedup", "seq_utility", "par_utility",
            "so_bound", "ratio_vs_so",
        ] {
            assert!(e[field].as_f64().is_some(), "missing {field}: {e:?}");
        }
        assert_eq!(e["size"], "small");
        assert_eq!(e["threads"].as_u64(), Some(64));
        // The determinism contract, visible from outside the process.
        assert_eq!(e["identical"].as_bool(), Some(true));
        assert_eq!(
            e["seq_utility"].as_f64().unwrap(),
            e["par_utility"].as_f64().unwrap(),
            "sequential and parallel utilities diverged: {e:?}"
        );
        let ratio = e["ratio_vs_so"].as_f64().unwrap();
        assert!((0.828..=1.0 + 1e-9).contains(&ratio), "ratio {ratio}");
    }
}

#[test]
fn bench_thread_override_changes_reported_pool_size_not_results() {
    let dir = tempdir();
    let a_path = dir.join("bench-t1.json");
    let b_path = dir.join("bench-t4.json");
    for (threads, path) in [("1", &a_path), ("4", &b_path)] {
        let out = bin()
            .args([
                "bench", "--small", "--reps", "1", "--seed", "9",
                "--threads", threads, "--out", path.to_str().unwrap(),
            ])
            .output()
            .unwrap();
        assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    }
    let a: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&a_path).unwrap()).unwrap();
    let b: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&b_path).unwrap()).unwrap();
    assert_eq!(a["pool_threads"].as_u64(), Some(1));
    assert_eq!(b["pool_threads"].as_u64(), Some(4));
    for (ea, eb) in a["entries"]
        .as_array()
        .unwrap()
        .iter()
        .zip(b["entries"].as_array().unwrap())
    {
        assert_eq!(ea["seq_utility"], eb["seq_utility"], "thread count changed output");
        assert_eq!(ea["par_utility"], eb["par_utility"], "thread count changed output");
    }
}
