//! True end-to-end tests of the `aa-solve` binary: spawn the compiled
//! executable, round-trip JSON through temp files, check exit codes.

use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_aa-solve"))
}

fn tempdir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("aa-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn generate_then_solve_pipeline() {
    let dir = tempdir();
    let problem_path = dir.join("problem.json");

    let gen = bin()
        .args([
            "generate", "--servers", "3", "--beta", "4", "--capacity", "100",
            "--dist", "powerlaw", "--alpha", "2.5", "--seed", "11",
        ])
        .output()
        .expect("binary runs");
    assert!(gen.status.success(), "{}", String::from_utf8_lossy(&gen.stderr));
    std::fs::write(&problem_path, &gen.stdout).unwrap();

    let solve = bin()
        .args(["solve", problem_path.to_str().unwrap(), "--solver", "algo2"])
        .output()
        .expect("binary runs");
    assert!(solve.status.success(), "{}", String::from_utf8_lossy(&solve.stderr));

    let solution: serde_json::Value = serde_json::from_slice(&solve.stdout).unwrap();
    assert_eq!(solution["solver"], "algo2");
    assert_eq!(solution["server"].as_array().unwrap().len(), 12);
    let ratio = solution["bound_ratio"].as_f64().unwrap();
    assert!((0.828..=1.0 + 1e-9).contains(&ratio), "ratio {ratio}");

    // The human summary goes to stderr so stdout stays machine-parsable.
    let err = String::from_utf8_lossy(&solve.stderr);
    assert!(err.contains("ratio="), "missing summary: {err}");
}

#[test]
fn solver_list_and_each_solver_runs() {
    let list = bin().arg("solvers").output().unwrap();
    assert!(list.status.success());
    let names: Vec<String> = String::from_utf8_lossy(&list.stdout)
        .lines()
        .map(str::to_string)
        .collect();
    assert!(names.contains(&"algo2".to_string()));
    assert!(names.contains(&"exact".to_string()));

    // A tiny problem every solver (even exact) can handle.
    let dir = tempdir();
    let path = dir.join("tiny.json");
    let gen = bin()
        .args(["generate", "--servers", "2", "--beta", "2", "--capacity", "10", "--seed", "3"])
        .output()
        .unwrap();
    std::fs::write(&path, &gen.stdout).unwrap();
    for name in &names {
        let out = bin()
            .args(["solve", path.to_str().unwrap(), "--solver", name])
            .output()
            .unwrap();
        assert!(out.status.success(), "{name} failed");
    }
}

#[test]
fn churn_with_generated_script() {
    let dir = tempdir();
    let path = dir.join("churn-gen.json");
    let gen = bin()
        .args(["generate", "--servers", "3", "--beta", "3", "--capacity", "50", "--seed", "7"])
        .output()
        .unwrap();
    std::fs::write(&path, &gen.stdout).unwrap();

    let out = bin()
        .args([
            "churn", path.to_str().unwrap(), "--epochs", "8", "--seed", "42",
            "--policy", "migrations", "--budget", "3",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let report: serde_json::Value = serde_json::from_slice(&out.stdout).unwrap();
    assert_eq!(report["epochs"].as_array().unwrap().len(), 8);
    let mean = report["mean_retention"].as_f64().unwrap();
    assert!(mean.is_finite() && mean > 0.0, "mean retention {mean}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("mean_retention="), "missing summary: {err}");
}

#[test]
fn churn_with_script_file() {
    let dir = tempdir();
    let problem_path = dir.join("churn-problem.json");
    let script_path = dir.join("churn-script.json");
    let gen = bin()
        .args(["generate", "--servers", "3", "--beta", "3", "--capacity", "50", "--seed", "9"])
        .output()
        .unwrap();
    std::fs::write(&problem_path, &gen.stdout).unwrap();
    std::fs::write(
        &script_path,
        r#"{
          "epochs": 6,
          "events": [
            {"kind": "server_down", "epoch": 1, "server": 2},
            {"kind": "thread_arrived", "epoch": 2,
             "utility": {"kind": "power", "scale": 2.0, "beta": 0.5, "cap": 50.0}},
            {"kind": "server_up", "epoch": 3},
            {"kind": "thread_departed", "epoch": 4, "thread": 0},
            {"kind": "capacity_changed", "epoch": 5, "capacity": 40.0}
          ]
        }"#,
    )
    .unwrap();

    let out = bin()
        .args([
            "churn", problem_path.to_str().unwrap(),
            "--script", script_path.to_str().unwrap(), "--pretty",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let report: serde_json::Value = serde_json::from_slice(&out.stdout).unwrap();
    assert_eq!(report["epochs"].as_array().unwrap().len(), 6);
}

#[test]
fn churn_rejects_unknown_policy() {
    let dir = tempdir();
    let path = dir.join("churn-policy.json");
    let gen = bin()
        .args(["generate", "--servers", "2", "--beta", "1", "--capacity", "10"])
        .output()
        .unwrap();
    std::fs::write(&path, &gen.stdout).unwrap();
    let out = bin()
        .args(["churn", path.to_str().unwrap(), "--policy", "hope"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("hope"));
}

#[test]
fn malformed_input_fails_cleanly() {
    let dir = tempdir();
    let path = dir.join("broken.json");
    std::fs::write(&path, "{ definitely not json").unwrap();
    let out = bin()
        .args(["solve", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("error"), "unhelpful stderr: {err}");
}

#[test]
fn unknown_solver_fails_with_hint() {
    let dir = tempdir();
    let path = dir.join("p.json");
    let gen = bin()
        .args(["generate", "--servers", "2", "--beta", "1", "--capacity", "10"])
        .output()
        .unwrap();
    std::fs::write(&path, &gen.stdout).unwrap();
    let out = bin()
        .args(["solve", path.to_str().unwrap(), "--solver", "magic"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("magic"));
}

#[test]
fn missing_command_prints_usage() {
    let out = bin().output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

#[test]
fn pretty_flag_pretty_prints() {
    let out = bin()
        .args(["generate", "--servers", "2", "--beta", "1", "--capacity", "5", "--pretty"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains('\n') && text.contains("  "), "not pretty-printed");
}
