//! True end-to-end tests of the `aa-solve` binary: spawn the compiled
//! executable, round-trip JSON through temp files, check exit codes.

use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_aa-solve"))
}

fn tempdir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("aa-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn generate_then_solve_pipeline() {
    let dir = tempdir();
    let problem_path = dir.join("problem.json");

    let gen = bin()
        .args([
            "generate", "--servers", "3", "--beta", "4", "--capacity", "100",
            "--dist", "powerlaw", "--alpha", "2.5", "--seed", "11",
        ])
        .output()
        .expect("binary runs");
    assert!(gen.status.success(), "{}", String::from_utf8_lossy(&gen.stderr));
    std::fs::write(&problem_path, &gen.stdout).unwrap();

    let solve = bin()
        .args(["solve", problem_path.to_str().unwrap(), "--solver", "algo2"])
        .output()
        .expect("binary runs");
    assert!(solve.status.success(), "{}", String::from_utf8_lossy(&solve.stderr));

    let solution: serde_json::Value = serde_json::from_slice(&solve.stdout).unwrap();
    assert_eq!(solution["solver"], "algo2");
    assert_eq!(solution["server"].as_array().unwrap().len(), 12);
    let ratio = solution["bound_ratio"].as_f64().unwrap();
    assert!((0.828..=1.0 + 1e-9).contains(&ratio), "ratio {ratio}");

    // The human summary goes to stderr so stdout stays machine-parsable.
    let err = String::from_utf8_lossy(&solve.stderr);
    assert!(err.contains("ratio="), "missing summary: {err}");
}

#[test]
fn solver_list_and_each_solver_runs() {
    let list = bin().arg("solvers").output().unwrap();
    assert!(list.status.success());
    let names: Vec<String> = String::from_utf8_lossy(&list.stdout)
        .lines()
        .map(str::to_string)
        .collect();
    assert!(names.contains(&"algo2".to_string()));
    assert!(names.contains(&"exact".to_string()));

    // A tiny problem every solver (even exact) can handle.
    let dir = tempdir();
    let path = dir.join("tiny.json");
    let gen = bin()
        .args(["generate", "--servers", "2", "--beta", "2", "--capacity", "10", "--seed", "3"])
        .output()
        .unwrap();
    std::fs::write(&path, &gen.stdout).unwrap();
    for name in &names {
        let out = bin()
            .args(["solve", path.to_str().unwrap(), "--solver", name])
            .output()
            .unwrap();
        assert!(out.status.success(), "{name} failed");
    }
}

#[test]
fn churn_with_generated_script() {
    let dir = tempdir();
    let path = dir.join("churn-gen.json");
    let gen = bin()
        .args(["generate", "--servers", "3", "--beta", "3", "--capacity", "50", "--seed", "7"])
        .output()
        .unwrap();
    std::fs::write(&path, &gen.stdout).unwrap();

    let out = bin()
        .args([
            "churn", path.to_str().unwrap(), "--epochs", "8", "--seed", "42",
            "--policy", "migrations", "--budget", "3",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let report: serde_json::Value = serde_json::from_slice(&out.stdout).unwrap();
    assert_eq!(report["epochs"].as_array().unwrap().len(), 8);
    let mean = report["mean_retention"].as_f64().unwrap();
    assert!(mean.is_finite() && mean > 0.0, "mean retention {mean}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("mean_retention="), "missing summary: {err}");
}

#[test]
fn churn_with_script_file() {
    let dir = tempdir();
    let problem_path = dir.join("churn-problem.json");
    let script_path = dir.join("churn-script.json");
    let gen = bin()
        .args(["generate", "--servers", "3", "--beta", "3", "--capacity", "50", "--seed", "9"])
        .output()
        .unwrap();
    std::fs::write(&problem_path, &gen.stdout).unwrap();
    std::fs::write(
        &script_path,
        r#"{
          "epochs": 6,
          "events": [
            {"kind": "server_down", "epoch": 1, "server": 2},
            {"kind": "thread_arrived", "epoch": 2,
             "utility": {"kind": "power", "scale": 2.0, "beta": 0.5, "cap": 50.0}},
            {"kind": "server_up", "epoch": 3},
            {"kind": "thread_departed", "epoch": 4, "thread": 0},
            {"kind": "capacity_changed", "epoch": 5, "capacity": 40.0}
          ]
        }"#,
    )
    .unwrap();

    let out = bin()
        .args([
            "churn", problem_path.to_str().unwrap(),
            "--script", script_path.to_str().unwrap(), "--pretty",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let report: serde_json::Value = serde_json::from_slice(&out.stdout).unwrap();
    assert_eq!(report["epochs"].as_array().unwrap().len(), 6);
}

#[test]
fn churn_rejects_unknown_policy() {
    let dir = tempdir();
    let path = dir.join("churn-policy.json");
    let gen = bin()
        .args(["generate", "--servers", "2", "--beta", "1", "--capacity", "10"])
        .output()
        .unwrap();
    std::fs::write(&path, &gen.stdout).unwrap();
    let out = bin()
        .args(["churn", path.to_str().unwrap(), "--policy", "hope"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("hope"));
}

#[test]
fn malformed_input_fails_cleanly() {
    let dir = tempdir();
    let path = dir.join("broken.json");
    std::fs::write(&path, "{ definitely not json").unwrap();
    let out = bin()
        .args(["solve", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("error"), "unhelpful stderr: {err}");
}

#[test]
fn unknown_solver_fails_with_hint() {
    let dir = tempdir();
    let path = dir.join("p.json");
    let gen = bin()
        .args(["generate", "--servers", "2", "--beta", "1", "--capacity", "10"])
        .output()
        .unwrap();
    std::fs::write(&path, &gen.stdout).unwrap();
    let out = bin()
        .args(["solve", path.to_str().unwrap(), "--solver", "magic"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("magic"));
}

#[test]
fn missing_command_prints_usage() {
    let out = bin().output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

#[test]
fn pretty_flag_pretty_prints() {
    let out = bin()
        .args(["generate", "--servers", "2", "--beta", "1", "--capacity", "5", "--pretty"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains('\n') && text.contains("  "), "not pretty-printed");
}

#[test]
fn bench_small_writes_valid_schema_with_matching_utilities() {
    let dir = tempdir();
    let out_path = dir.join("BENCH_solver.json");
    let run = || -> serde_json::Value {
        let out = bin()
            .args([
                "bench", "--small", "--mode", "matrix", "--reps", "20", "--seed", "5",
                "--out", out_path.to_str().unwrap(),
            ])
            .output()
            .expect("binary runs");
        assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
        // The human summary goes to stderr; the JSON goes to the file.
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("speedup="), "missing summary: {err}");
        serde_json::from_str(&std::fs::read_to_string(&out_path).unwrap()).unwrap()
    };

    let report = run();
    assert_eq!(report["version"].as_u64(), Some(5));
    assert_eq!(report["solver"], "algo2");
    assert!(report["pool_threads"].as_u64().unwrap() >= 1);
    assert!(report["hardware_threads"].as_u64().unwrap() >= 1);
    assert_eq!(report["seed"].as_u64(), Some(5));

    let entries = report["entries"].as_array().unwrap();
    assert_eq!(entries.len(), 4, "four distributions in the small matrix");
    let mut dists: Vec<&str> = entries.iter().map(|e| e["dist"].as_str().unwrap()).collect();
    dists.sort_unstable();
    assert_eq!(dists, ["discrete", "normal", "powerlaw", "uniform"]);
    for e in entries {
        for field in [
            "seq_millis", "par_millis", "speedup", "seq_utility", "par_utility",
            "so_bound", "ratio_vs_so",
            // Schema v4: the batched-kernel vs dispatch sweep times.
            "kernel_sweep_micros", "dispatch_sweep_micros",
        ] {
            assert!(e[field].as_f64().is_some(), "missing {field}: {e:?}");
        }
        // Schema v3: per-stage breakdowns are always present.
        for field in ["superopt_micros", "linearize_micros", "assign_micros"] {
            assert!(e[field].as_u64().is_some(), "missing {field}: {e:?}");
        }
        assert_eq!(e["size"], "small");
        assert_eq!(e["threads"].as_u64(), Some(64));
        // The determinism contract, visible from outside the process.
        assert_eq!(e["identical"].as_bool(), Some(true));
        assert_eq!(
            e["seq_utility"].as_f64().unwrap(),
            e["par_utility"].as_f64().unwrap(),
            "sequential and parallel utilities diverged: {e:?}"
        );
        let ratio = e["ratio_vs_so"].as_f64().unwrap();
        assert!((0.828..=1.0 + 1e-9).contains(&ratio), "ratio {ratio}");
    }

    // Schema v4: the all-discrete ladder entry, one per matrix size.
    let ladder = report["discrete_path"].as_array().unwrap();
    assert_eq!(ladder.len(), 1, "one staircase entry in the small matrix");
    let e = &ladder[0];
    assert_eq!(e["name"], "staircase-small");
    assert_eq!(e["threads"].as_u64(), Some(64));
    assert_eq!(e["ladder_engaged"].as_bool(), Some(true), "{e:?}");
    assert_eq!(e["identical"].as_bool(), Some(true), "{e:?}");
    assert!(e["ladder_micros"].as_f64().unwrap() >= 0.0);
    assert!(e["generic_micros"].as_f64().unwrap() >= 0.0);

    // Every matrix entry must hold par ≥ 0.95× seq. Small instances sit
    // below the parallel threshold, where `solve_par` falls straight
    // through to the sequential path — identical code, so any shortfall
    // is pure timing noise. Retry the whole bench before declaring a
    // real (systematic) slowdown.
    let all_fast = |r: &serde_json::Value| {
        r["entries"]
            .as_array()
            .unwrap()
            .iter()
            .all(|e| e["speedup"].as_f64().unwrap() >= 0.95)
    };
    let mut ok = all_fast(&report);
    for _ in 0..2 {
        if ok {
            break;
        }
        ok = all_fast(&run());
    }
    assert!(ok, "parallel slowdown persisted across three bench runs");
}

#[test]
fn bench_incremental_mode_reports_warm_vs_cold() {
    let dir = tempdir();
    let out_path = dir.join("BENCH_incremental.json");
    let out = bin()
        .args([
            "bench", "--small", "--mode", "incremental", "--seed", "5",
            "--out", out_path.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("warm="), "missing drift summary: {err}");

    let report: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&out_path).unwrap()).unwrap();
    assert_eq!(report["version"].as_u64(), Some(5));
    assert!(report["entries"].as_array().unwrap().is_empty());
    assert!(report["discrete_path"].as_array().unwrap().is_empty());
    let incremental = report["incremental"].as_array().unwrap();
    assert_eq!(incremental.len(), 4, "four distributions in the small drift suite");
    for e in incremental {
        for field in [
            "cold_median_millis", "warm_median_millis", "speedup",
            "cold_demand_maps_mean", "warm_demand_maps_mean",
        ] {
            assert!(e[field].as_f64().is_some(), "missing {field}: {e:?}");
        }
        // The bit-identity contract, visible from outside the process.
        assert_eq!(e["identical"].as_bool(), Some(true), "{e:?}");
        let epochs = e["epochs"].as_u64().unwrap();
        assert_eq!(e["warm_epochs"].as_u64(), Some(epochs - 1), "fell off the warm path: {e:?}");
    }
}

// ---- exit-code contract ----
//
// Each error class maps to a distinct, documented exit code so scripts
// can dispatch on failures without parsing stderr.

#[test]
fn exit_code_contract_is_documented_in_help() {
    let out = bin().arg("help").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("exit codes"), "help is missing the exit-code table: {text}");
    assert!(text.contains("serve"), "help is missing the serve command: {text}");
}

#[test]
fn unknown_command_exits_1_with_usage() {
    let out = bin().arg("frobnicate").output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

#[test]
fn malformed_json_exits_2() {
    let dir = tempdir();
    let path = dir.join("garbage.json");
    std::fs::write(&path, "{ nope").unwrap();
    let out = bin().args(["solve", path.to_str().unwrap()]).output().unwrap();
    assert_eq!(out.status.code(), Some(2), "{}", String::from_utf8_lossy(&out.stderr));
}

#[test]
fn unknown_solver_exits_3() {
    let dir = tempdir();
    let path = dir.join("p3.json");
    let gen = bin()
        .args(["generate", "--servers", "2", "--beta", "1", "--capacity", "10"])
        .output()
        .unwrap();
    std::fs::write(&path, &gen.stdout).unwrap();
    let out = bin()
        .args(["solve", path.to_str().unwrap(), "--solver", "magic"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(3), "{}", String::from_utf8_lossy(&out.stderr));
}

#[test]
fn oversized_exact_instance_exits_4() {
    // 8 servers × 8 threads/server = 64 threads, far past the exact
    // enumerator's limit: a typed SolveError, not a panic.
    let dir = tempdir();
    let path = dir.join("big.json");
    let gen = bin()
        .args(["generate", "--servers", "8", "--beta", "8", "--capacity", "10"])
        .output()
        .unwrap();
    std::fs::write(&path, &gen.stdout).unwrap();
    let out = bin()
        .args(["solve", path.to_str().unwrap(), "--solver", "exact"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(4), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stderr).contains("solve failed"));
}

#[test]
fn missing_input_file_exits_6() {
    let out = bin()
        .args(["solve", "/definitely/not/a/file.json"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(6), "{}", String::from_utf8_lossy(&out.stderr));
}

// ---- serve ----

fn serve_request(id: u64, deadline_ms: Option<u64>, threads: usize) -> String {
    let specs: Vec<String> = (0..threads)
        .map(|i| {
            format!(
                r#"{{"kind":"power","scale":{}.0,"beta":0.5,"cap":100.0}}"#,
                1 + (i % 7)
            )
        })
        .collect();
    let problem = format!(
        r#"{{"servers":4,"capacity":100.0,"threads":[{}]}}"#,
        specs.join(",")
    );
    match deadline_ms {
        Some(d) => format!(r#"{{"id":{id},"deadline_ms":{d},"problem":{problem}}}"#),
        None => format!(r#"{{"id":{id},"problem":{problem}}}"#),
    }
}

#[test]
fn serve_end_to_end_sheds_overload_and_exits_cleanly() {
    use std::io::Write as _;
    use std::process::Stdio;

    let dir = tempdir();
    let counters_path = dir.join("serve-counters.json");

    // A large unbudgeted head request keeps the worker busy for many
    // milliseconds while the burst behind it hits a queue of depth 1,
    // plus one tiny-deadline request that must degrade, not fail.
    let mut input = serve_request(0, None, 3000);
    for i in 1..=6 {
        input.push('\n');
        input.push_str(&serve_request(i, None, 4));
    }
    input.push('\n');
    input.push_str(&serve_request(7, Some(1), 500));
    input.push('\n');

    let mut child = bin()
        .args(["serve", "--queue", "1", "--counters", counters_path.to_str().unwrap()])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary runs");
    let mut stdin = child.stdin.take().unwrap();
    let writer = std::thread::spawn(move || {
        stdin.write_all(input.as_bytes()).unwrap();
        // Dropping stdin closes the pipe: EOF ends the serve loop.
    });
    let out = child.wait_with_output().unwrap();
    writer.join().unwrap();

    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let responses: Vec<serde_json::Value> = String::from_utf8_lossy(&out.stdout)
        .lines()
        .map(|l| serde_json::from_str(l).unwrap())
        .collect();
    assert_eq!(responses.len(), 8, "one response per request");
    let shed = responses.iter().filter(|r| r["status"] == "overloaded").count();
    assert!(shed > 0, "burst was not shed: {responses:?}");
    for r in responses.iter().filter(|r| r["status"] == "overloaded") {
        assert!(r["retry_after_ms"].as_u64().unwrap() >= 1);
    }
    // Admitted requests either solve or expire in queue behind the big
    // head request; nothing may fail for any other reason.
    for r in responses.iter().filter(|r| r["status"] == "error") {
        assert_eq!(r["class"], "deadline", "unexpected failure: {r:?}");
    }

    // The shutdown dump: human summary on stderr, JSON in --counters.
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("serve: received=8"), "missing summary: {err}");
    let counters: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&counters_path).unwrap()).unwrap();
    assert_eq!(counters["received"].as_u64(), Some(8));
    assert_eq!(counters["shed"].as_u64(), Some(shed as u64));
    assert_eq!(counters["deadline_misses"].as_u64(), Some(0));
    let solved = counters["solved"].as_u64().unwrap();
    let expired = counters["expired_in_queue"].as_u64().unwrap();
    assert_eq!(solved + shed as u64 + expired, 8);
    // Per-request latency percentiles in the dump: positive (at least
    // the head request solved) and ordered.
    let p50 = counters["latency_p50_ms"].as_f64().unwrap();
    let p99 = counters["latency_p99_ms"].as_f64().unwrap();
    assert!(p50 > 0.0, "p50 {p50} with {solved} solved");
    assert!(p99 >= p50, "p99 {p99} < p50 {p50}");
}

// ---- observability ----

#[test]
fn solve_trace_writes_chrome_trace_covering_the_pipeline() {
    let dir = tempdir();
    let problem_path = dir.join("trace-problem.json");
    let trace_path = dir.join("solve-trace.json");
    let gen = bin()
        .args(["generate", "--servers", "4", "--beta", "8", "--capacity", "100", "--seed", "21"])
        .output()
        .unwrap();
    std::fs::write(&problem_path, &gen.stdout).unwrap();

    let out = bin()
        .args([
            "solve", problem_path.to_str().unwrap(),
            "--trace", trace_path.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    let doc: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&trace_path).unwrap()).unwrap();
    let events = doc["traceEvents"].as_array().unwrap();
    assert!(!events.is_empty(), "no spans recorded");
    let names: Vec<&str> = events.iter().map(|e| e["name"].as_str().unwrap()).collect();
    for stage in ["algo2", "superopt", "linearize", "assign"] {
        assert!(names.contains(&stage), "missing {stage} span in {names:?}");
    }
    for e in events {
        assert_eq!(e["ph"], "X", "{e:?}");
        assert!(e["ts"].as_u64().is_some(), "{e:?}");
        assert!(e["dur"].as_u64().is_some(), "{e:?}");
        assert!(e["tid"].as_u64().is_some(), "{e:?}");
    }
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("trace:"), "missing trace summary: {err}");
}

#[test]
fn bench_trace_covers_matrix_and_incremental_stages() {
    let dir = tempdir();
    let out_path = dir.join("bench-traced.json");
    let trace_path = dir.join("bench-trace.json");
    let out = bin()
        .args([
            "bench", "--small", "--mode", "full", "--reps", "1", "--seed", "5",
            "--out", out_path.to_str().unwrap(),
            "--trace", trace_path.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    let doc: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&trace_path).unwrap()).unwrap();
    let events = doc["traceEvents"].as_array().unwrap();
    let names: Vec<&str> = events.iter().map(|e| e["name"].as_str().unwrap()).collect();
    for stage in ["bench_probe", "algo2", "superopt", "linearize", "assign", "incremental"] {
        assert!(names.contains(&stage), "missing {stage} span in trace");
    }

    // With recording armed, the report's stage breakdowns must be live:
    // the probe's untimed solve cannot lose its spans to a race because
    // --trace keeps the collector enabled for the whole run.
    let report: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&out_path).unwrap()).unwrap();
    for e in report["entries"].as_array().unwrap() {
        let total = e["superopt_micros"].as_u64().unwrap()
            + e["linearize_micros"].as_u64().unwrap()
            + e["assign_micros"].as_u64().unwrap();
        assert!(total > 0, "empty stage breakdown: {e:?}");
    }
}

#[test]
fn serve_metrics_endpoint_and_dump_expose_the_registry() {
    use std::io::{BufRead as _, BufReader, Read as _, Write as _};
    use std::process::Stdio;

    let dir = tempdir();
    let dump_path = dir.join("serve-metrics.json");
    let mut child = bin()
        .args([
            "serve",
            "--metrics-addr", "127.0.0.1:0",
            "--metrics-dump", dump_path.to_str().unwrap(),
        ])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary runs");

    // The bound address is announced on stderr before the loop starts.
    let mut stderr = BufReader::new(child.stderr.take().unwrap());
    let mut line = String::new();
    stderr.read_line(&mut line).unwrap();
    let addr = line
        .trim()
        .strip_prefix("metrics: http://")
        .and_then(|rest| rest.strip_suffix("/metrics"))
        .unwrap_or_else(|| panic!("unexpected metrics line: {line:?}"))
        .to_string();

    let mut stdin = child.stdin.take().unwrap();
    stdin.write_all(serve_request(1, None, 4).as_bytes()).unwrap();
    stdin.write_all(b"\n").unwrap();
    stdin.write_all(serve_request(2, None, 4).as_bytes()).unwrap();
    stdin.write_all(b"\n").unwrap();
    stdin.flush().unwrap();

    // Scrape until both requests are visible (requests are counted on
    // read, but give the loop time to pick them up).
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    let mut scrape = String::new();
    loop {
        let mut conn = std::net::TcpStream::connect(&addr).unwrap();
        conn.write_all(b"GET /metrics HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n")
            .unwrap();
        scrape.clear();
        conn.read_to_string(&mut scrape).unwrap();
        if scrape.contains("aa_serve_received_total 2") {
            break;
        }
        assert!(std::time::Instant::now() < deadline, "metrics never caught up: {scrape}");
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    assert!(scrape.starts_with("HTTP/1.1 200 OK"), "{scrape}");
    assert!(scrape.contains("# TYPE aa_serve_received_total counter"), "{scrape}");

    // The JSON endpoint serves the same registry.
    let mut conn = std::net::TcpStream::connect(&addr).unwrap();
    conn.write_all(b"GET /metrics.json HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n")
        .unwrap();
    let mut json_scrape = String::new();
    conn.read_to_string(&mut json_scrape).unwrap();
    assert!(json_scrape.contains("\"aa_serve_received_total\":2"), "{json_scrape}");

    drop(stdin); // EOF ends the loop and triggers the dump.
    let status = child.wait().unwrap();
    assert!(status.success());

    let dump: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&dump_path).unwrap()).unwrap();
    assert_eq!(dump["counters"]["aa_serve_received_total"].as_u64(), Some(2));
    assert_eq!(dump["counters"]["aa_serve_solved_total"].as_u64(), Some(2));
    let latency = &dump["histograms"]["aa_serve_latency_micros"];
    assert_eq!(latency["count"].as_u64(), Some(2));
    assert!(latency["p50_micros"].as_u64().unwrap() >= 1);
}

#[test]
fn log_format_json_emits_one_object_per_line() {
    let dir = tempdir();
    let path = dir.join("log-json.json");
    let gen = bin()
        .args(["generate", "--servers", "2", "--beta", "2", "--capacity", "10", "--seed", "4"])
        .output()
        .unwrap();
    std::fs::write(&path, &gen.stdout).unwrap();

    let out = bin()
        .args(["solve", path.to_str().unwrap(), "--log-format", "json"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let err = String::from_utf8_lossy(&out.stderr);
    let mut saw_summary = false;
    for line in err.lines().filter(|l| !l.is_empty()) {
        let record: serde_json::Value =
            serde_json::from_str(line).unwrap_or_else(|e| panic!("non-JSON log {line:?}: {e}"));
        assert!(record["level"].as_str().is_some(), "{record:?}");
        saw_summary |= record["msg"].as_str().is_some_and(|m| m.contains("ratio="));
    }
    assert!(saw_summary, "summary line missing from JSON stderr: {err}");

    // Errors honor the format too, and the exit-code contract is intact.
    let bad = bin()
        .args(["solve", "/definitely/not/a/file.json", "--log-format", "json"])
        .output()
        .unwrap();
    assert_eq!(bad.status.code(), Some(6));
    let first = String::from_utf8_lossy(&bad.stderr);
    let record: serde_json::Value =
        serde_json::from_str(first.lines().next().unwrap()).unwrap();
    assert_eq!(record["level"], "error");
}

#[test]
fn bench_thread_override_changes_reported_pool_size_not_results() {
    let dir = tempdir();
    let a_path = dir.join("bench-t1.json");
    let b_path = dir.join("bench-t4.json");
    for (threads, path) in [("1", &a_path), ("4", &b_path)] {
        let out = bin()
            .args([
                "bench", "--small", "--mode", "matrix", "--reps", "1", "--seed", "9",
                "--threads", threads, "--out", path.to_str().unwrap(),
            ])
            .output()
            .unwrap();
        assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    }
    let a: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&a_path).unwrap()).unwrap();
    let b: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&b_path).unwrap()).unwrap();
    assert_eq!(a["pool_threads"].as_u64(), Some(1));
    assert_eq!(b["pool_threads"].as_u64(), Some(4));
    for (ea, eb) in a["entries"]
        .as_array()
        .unwrap()
        .iter()
        .zip(b["entries"].as_array().unwrap())
    {
        assert_eq!(ea["seq_utility"], eb["seq_utility"], "thread count changed output");
        assert_eq!(ea["par_utility"], eb["par_utility"], "thread count changed output");
    }
}

#[test]
fn serve_oversized_line_gets_parse_error_not_oom() {
    use std::io::Write as _;
    use std::process::Stdio;

    // A multi-megabyte line (past the default 1 MiB cap) followed by a
    // valid request: the loop answers the monster with a parse error and
    // keeps serving instead of buffering it whole.
    let mut input = String::with_capacity(3 << 20);
    input.push_str(r#"{"id":0,"problem":""#);
    input.push_str(&"x".repeat(3 << 20));
    input.push_str("\"}\n");
    input.push_str(&serve_request(1, None, 4));
    input.push('\n');

    let mut child = bin()
        .args(["serve"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary runs");
    let mut stdin = child.stdin.take().unwrap();
    let writer = std::thread::spawn(move || {
        stdin.write_all(input.as_bytes()).unwrap();
    });
    let out = child.wait_with_output().unwrap();
    writer.join().unwrap();

    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let responses: Vec<serde_json::Value> = String::from_utf8_lossy(&out.stdout)
        .lines()
        .map(|l| serde_json::from_str(l).unwrap())
        .collect();
    assert_eq!(responses.len(), 2, "{responses:?}");
    let parse = responses.iter().find(|r| r["status"] == "error").unwrap();
    assert_eq!(parse["class"], "parse", "{parse:?}");
    assert_eq!(parse["id"], serde_json::Value::Null);
    assert!(
        parse["error"].as_str().unwrap().contains("max-line-bytes"),
        "{parse:?}"
    );
    assert!(
        responses.iter().any(|r| r["status"] == "ok" && r["id"].as_u64() == Some(1)),
        "{responses:?}"
    );
}

#[test]
fn serve_with_shards_answers_keyed_streams() {
    use std::io::Write as _;
    use std::process::Stdio;

    let mut input = String::new();
    for i in 0..8u64 {
        input.push_str(&format!(
            r#"{{"id":{i},"stream":{},"problem":{{"servers":4,"capacity":100.0,"threads":[{{"kind":"power","scale":2.0,"beta":0.5,"cap":100.0}}]}}}}"#,
            i % 4
        ));
        input.push('\n');
    }

    let mut child = bin()
        .args(["serve", "--shards", "2", "--queue", "32"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary runs");
    let mut stdin = child.stdin.take().unwrap();
    let writer = std::thread::spawn(move || {
        stdin.write_all(input.as_bytes()).unwrap();
    });
    let out = child.wait_with_output().unwrap();
    writer.join().unwrap();

    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let responses: Vec<serde_json::Value> = String::from_utf8_lossy(&out.stdout)
        .lines()
        .map(|l| serde_json::from_str(l).unwrap())
        .collect();
    assert_eq!(responses.len(), 8);
    assert!(responses.iter().all(|r| r["status"] == "ok"), "{responses:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("serve: received=8"), "missing summary: {err}");
}

#[test]
fn metrics_addr_bind_failure_exits_8() {
    // Occupy a port, then ask serve to bind it: the distinct exit code
    // lets orchestrators tell "metrics endpoint taken" from data i/o
    // failures (exit 6).
    let holder = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = holder.local_addr().unwrap().to_string();
    let out = bin()
        .args(["serve", "--metrics-addr", &addr])
        .stdin(std::process::Stdio::null())
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(8), "{}", String::from_utf8_lossy(&out.stderr));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("could not bind metrics endpoint"), "{err}");

    // The code is part of the documented contract.
    let help = bin().arg("help").output().unwrap();
    let text = String::from_utf8_lossy(&help.stdout);
    assert!(text.contains("8  metrics endpoint bind failed"), "{text}");
}

// ---- chaos ----

#[test]
fn chaos_command_gates_on_robustness_invariants() {
    let dir = tempdir();
    let report_path = dir.join("chaos-report.json");
    // Small storm (CI runs on few cores): 2 shards each killed twice,
    // with contained panics and stalls from the default schedule.
    let out = bin()
        .args([
            "chaos", "--shards", "2", "--streams-per-shard", "1", "--rounds", "40",
            "--kills", "2", "--seed", "7", "--out", report_path.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "chaos gate failed:\n{}\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );

    let report: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&report_path).unwrap()).unwrap();
    assert_eq!(report["exactly_once"].as_bool(), Some(true), "{report:?}");
    assert_eq!(report["survived"].as_bool(), Some(true), "{report:?}");
    assert_eq!(report["live_shards"].as_u64(), Some(2), "{report:?}");
    assert!(report["missing_seqs"].as_array().unwrap().is_empty(), "{report:?}");
    assert!(report["duplicate_seqs"].as_array().unwrap().is_empty(), "{report:?}");
    for r in report["restarts"].as_array().unwrap() {
        assert!(r.as_u64().unwrap() >= 2, "a shard was not killed twice: {report:?}");
    }
    // stdout carries the same JSON for piping.
    let piped: serde_json::Value =
        serde_json::from_str(&String::from_utf8_lossy(&out.stdout)).unwrap();
    assert_eq!(piped["exactly_once"].as_bool(), Some(true));
}
