//! Regression pin for the benchmark matrix's `discrete`/`large` cell —
//! the 16×8192 instance that was the v3 baseline's 181 ms outlier.
//!
//! The workload generator's "discrete" distribution draws *utility
//! parameters* from a discrete set but emits smooth (PCHIP-envelope)
//! curves, so the allocator's all-discrete integer ladder must
//! **disengage** on this instance — and the default, generic, and
//! parallel paths must still agree down to the last bit. This is the
//! exact seeded instance from the committed `BENCH_solver.json`
//! (base seed 2016, entry index 7).

use aa_allocator::bisection::{allocate, allocate_generic, discrete_ladder_bracket};
use aa_core::algo2;
use aa_workloads::{Distribution, InstanceSpec};
use rand::{rngs::StdRng, SeedableRng};

/// Derived entry seed of the discrete/large cell in the committed
/// baseline (pinned there as `entries[7].seed`).
const DISCRETE_LARGE_SEED: u64 = 16894640282273722000;

#[test]
fn discrete_large_bench_instance_is_bit_stable() {
    let spec = InstanceSpec {
        servers: 16,
        beta: 512,
        capacity: 1000.0,
        dist: Distribution::Discrete { gamma: 0.85, theta: 5.0 },
    };
    let mut rng = StdRng::seed_from_u64(DISCRETE_LARGE_SEED);
    let problem = spec.generate(&mut rng).expect("seeded instance builds");
    assert_eq!(problem.len(), 8192);

    // Allocator level: the single-pool super-optimal subproblem over the
    // capped per-thread views at budget B = m·C.
    let utils = problem.capped_threads();
    let budget = 16.0 * 1000.0;
    assert_eq!(
        discrete_ladder_bracket(&utils, budget),
        None,
        "generated curves are smooth; the integer ladder must disengage"
    );
    let fast = allocate(&utils, budget);
    let generic = allocate_generic(&utils, budget);
    for (i, (a, b)) in fast.amounts.iter().zip(&generic.amounts).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "amounts[{i}] diverged");
    }
    assert_eq!(fast.utility.to_bits(), generic.utility.to_bits());

    // Solver level: sequential and parallel Algorithm 2 stay identical
    // on the full instance (the bench matrix's `identical` contract).
    let seq = algo2::solve(&problem);
    for &threads in &[2usize, 8] {
        let par = rayon::with_threads(threads, || algo2::solve_par(&problem));
        assert_eq!(seq, par, "seq vs par@{threads} diverged");
    }
}
