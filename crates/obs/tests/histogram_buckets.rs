//! Bucket-boundary unit tests for the log-linear histogram: the
//! le-semantics of `bucket_index`, the boundary generator, and the
//! quantile estimator's capping behavior.

use aa_obs::metrics::{bucket_boundary_micros, bucket_index, Histogram, NUM_BOUNDARIES};

#[test]
fn boundaries_are_log_linear_and_strictly_increasing() {
    // m·10^e for m ∈ 1..=9, e ∈ 0..=8: 1, 2, …, 9, 10, 20, …, 900_000_000.
    assert_eq!(bucket_boundary_micros(0), 1);
    assert_eq!(bucket_boundary_micros(8), 9);
    assert_eq!(bucket_boundary_micros(9), 10);
    assert_eq!(bucket_boundary_micros(10), 20);
    assert_eq!(bucket_boundary_micros(17), 90);
    assert_eq!(bucket_boundary_micros(18), 100);
    assert_eq!(bucket_boundary_micros(NUM_BOUNDARIES - 1), 900_000_000);
    for i in 1..NUM_BOUNDARIES {
        assert!(
            bucket_boundary_micros(i) > bucket_boundary_micros(i - 1),
            "boundary {i} not increasing"
        );
    }
}

#[test]
fn index_is_smallest_boundary_at_or_above_value() {
    // Exhaustive oracle over a dense low range plus targeted probes: the
    // correct bucket is the first boundary ≥ v (le-semantics).
    let oracle = |v: u64| {
        (0..NUM_BOUNDARIES)
            .find(|&i| bucket_boundary_micros(i) >= v)
            .unwrap_or(NUM_BOUNDARIES)
    };
    for v in 0..5_000 {
        assert_eq!(bucket_index(v), oracle(v), "value {v}");
    }
    for v in [
        99_999,
        100_000,
        100_001,
        899_999_999,
        900_000_000,
        900_000_001,
        u64::MAX,
    ] {
        assert_eq!(bucket_index(v), oracle(v), "value {v}");
    }
}

#[test]
fn exact_boundaries_land_in_their_own_bucket() {
    for i in 0..NUM_BOUNDARIES {
        assert_eq!(bucket_index(bucket_boundary_micros(i)), i, "boundary {i}");
    }
    // One past a boundary rolls into the next bucket — including the
    // 9→10 decade rollover.
    assert_eq!(bucket_index(9), 8);
    assert_eq!(bucket_index(10), 9);
    assert_eq!(bucket_index(11), 10);
    assert_eq!(bucket_index(900), 26); // le=900 = 2·9 + 8
    assert_eq!(bucket_index(901), 27); // 901 → le=1000 = 3·9 + 0
}

#[test]
fn values_above_the_last_boundary_overflow() {
    assert_eq!(bucket_index(900_000_001), NUM_BOUNDARIES);
    assert_eq!(bucket_index(u64::MAX), NUM_BOUNDARIES);
}

#[test]
fn quantiles_are_bucket_upper_bounds_capped_at_max() {
    let h = Histogram::default();
    assert_eq!(h.quantile_micros(0.5), 0, "empty histogram");
    // 100 observations: 1..=100 µs.
    for v in 1..=100 {
        h.record_micros(v);
    }
    assert_eq!(h.count(), 100);
    assert_eq!(h.sum_micros(), 5050);
    assert_eq!(h.max_micros(), 100);
    // Rank 50 lands in the le=50 bucket (values 41..=50).
    assert_eq!(h.quantile_micros(0.50), 50);
    // Rank 99 → le=100 bucket; rank 100 likewise, capped at max=100.
    assert_eq!(h.quantile_micros(0.99), 100);
    assert_eq!(h.quantile_micros(1.0), 100);
    // Monotone in q and never above the exact max.
    let mut last = 0;
    for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
        let v = h.quantile_micros(q);
        assert!(v >= last, "quantile not monotone at q={q}");
        assert!(v <= h.max_micros());
        last = v;
    }
}

#[test]
fn quantile_of_skewed_data_stays_at_or_above_true_value() {
    // The estimator reports the bucket *upper* bound, so it may round a
    // true quantile up within its bucket but never below it.
    let h = Histogram::default();
    for _ in 0..999 {
        h.record_micros(3);
    }
    h.record_micros(7_777);
    assert_eq!(h.quantile_micros(0.50), 3);
    assert_eq!(h.quantile_micros(0.99), 3);
    // The single outlier defines the tail: le=8000 capped at max=7777.
    assert_eq!(h.quantile_micros(1.0), 7_777);
}

#[test]
fn overflow_observations_report_exact_max() {
    let h = Histogram::default();
    h.record_micros(2_000_000_000); // past the last boundary
    assert_eq!(h.quantile_micros(0.5), 2_000_000_000);
    assert_eq!(h.max_micros(), 2_000_000_000);
}
