//! `aa-obs` — the workspace's observability substrate: structured
//! spans, a metrics registry, exporters and a leveled logger, all
//! dependency-free (`std` only) so every other crate can instrument
//! itself without dragging anything into the build.
//!
//! # Design contract
//!
//! The solver pipeline carries hard performance guarantees that this
//! crate must not erode:
//!
//! * **Bit-identity** — recording never touches solver arithmetic, so
//!   enabling a collector cannot change any output (pinned by the
//!   differential proptest in `aa-core/tests/obs_differential.rs`).
//! * **Zero allocation** — every record path (span push, counter inc,
//!   histogram observe) is allocation-free once its handle exists; the
//!   span buffer is preallocated at [`Collector::install`] time. The
//!   counting-allocator test in `aa-core/tests/arena_alloc.rs` measures
//!   a steady-state solve **with a live collector** and still asserts
//!   zero.
//! * **Overhead budget < 3 %** on the 64-server × 512-thread drift
//!   workload (gated by `aa-core/tests/obs_overhead.rs` in CI).
//!
//! # Three layers
//!
//! 1. [`trace`] — `span!("superopt")` RAII spans with enter/exit
//!    timestamps, parent links and thread ids, buffered by a global
//!    [`Collector`] that compiles down to a single atomic-load check
//!    when absent or disabled. Export with
//!    [`export::chrome_trace_json`] (`aa solve --trace out.json`).
//! 2. [`metrics`] — named [`Counter`]s / [`Gauge`]s / log-linear
//!    [`Histogram`]s in a [`Registry`]; the process-wide instance is
//!    [`global()`]. Export with [`export::prometheus_text`] /
//!    [`export::json_snapshot`] (`aa serve --metrics-addr/--metrics-dump`).
//! 3. [`log`] — `obs_info!`-family macros behind one leveled,
//!    format-switchable (`pretty`/`json`) stderr logger.
//!
//! Metric names follow `aa_<subsystem>_<name>[_<unit>]` with
//! `_total` for counters and `_micros` for µs-domain histograms; span
//! names are the pipeline stage names (DESIGN.md §9 has the full
//! taxonomy).

pub mod export;
pub mod log;
pub mod metrics;
pub mod trace;

pub use log::{init_logger, log_enabled, LogFormat, LogLevel};
pub use metrics::{
    Counter, FederatedHistogram, FederatedSnapshot, Gauge, Histogram, Metric, Registry, SloTracker,
};
pub use trace::{Collector, SpanEvent, SpanGuard};

use std::sync::OnceLock;

static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// The process-wide metrics registry. Always available — recording
/// into it is independent of whether a [`Collector`] is installed;
/// instrumentation sites that should be free when observability is off
/// gate themselves on [`record_enabled`] instead.
#[must_use]
pub fn global() -> &'static Registry {
    GLOBAL.get_or_init(Registry::new)
}

/// `true` iff a [`Collector`] is installed and enabled — the one-load
/// fast-path gate for solver-side instrumentation.
#[must_use]
pub fn record_enabled() -> bool {
    trace::recording()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_registry_is_shared() {
        global().counter("aa_obs_selftest_total").inc();
        assert!(global().counter("aa_obs_selftest_total").get() >= 1);
    }
}
