//! Lightweight structured spans.
//!
//! A span is entered with [`crate::span!`] and records, on drop, a
//! fixed-size [`SpanEvent`] — name, enter/exit timestamps relative to
//! the collector epoch, a per-thread id and a parent link — into the
//! installed [`Collector`]'s preallocated buffer.
//!
//! Cost model, because this wraps the solver hot path:
//!
//! * **no collector installed / disabled**: one relaxed atomic load and
//!   a branch per span — effectively free, and `SpanGuard` carries no
//!   state (`active: None`).
//! * **collector live**: two `Instant::now()` calls, two thread-local
//!   `Cell` updates, and one push into a `Mutex`-guarded `Vec` that was
//!   preallocated at install time. **No heap allocation** on any record
//!   path (span names are `&'static str`); when the buffer is full new
//!   events are counted in `dropped_events` and discarded rather than
//!   growing the buffer.
//!
//! Parent links are tracked per thread (a thread-local current-span
//! cell), so spans opened on pool worker threads start a fresh chain on
//! that thread — exactly how a Chrome trace renders them (one lane per
//! thread id).

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Default span-buffer capacity (events) for [`Collector::install`].
pub const DEFAULT_CAPACITY: usize = 1 << 16;

/// One completed span.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanEvent {
    /// Span name (static — recording never allocates).
    pub name: &'static str,
    /// Microseconds from the collector epoch to span entry.
    pub start_micros: u64,
    /// Span duration in microseconds.
    pub duration_micros: u64,
    /// Dense per-process thread id (assigned on each thread's first span).
    pub thread_id: u64,
    /// Unique span id (never 0).
    pub id: u64,
    /// Id of the span active on this thread at entry; 0 for roots.
    pub parent_id: u64,
}

/// The process-wide span collector. Installed at most once; recording
/// compiles down to a no-op check when it is absent or disabled.
#[derive(Debug)]
pub struct Collector {
    epoch: Instant,
    enabled: AtomicBool,
    next_span_id: AtomicU64,
    dropped: AtomicU64,
    events: Mutex<Vec<SpanEvent>>,
    capacity: usize,
}

static COLLECTOR: OnceLock<Collector> = OnceLock::new();
static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static THREAD_ID: Cell<u64> = const { Cell::new(0) };
    static CURRENT_SPAN: Cell<u64> = const { Cell::new(0) };
}

impl Collector {
    /// Install the global collector (enabled, [`DEFAULT_CAPACITY`]
    /// events) and return it. Idempotent: later calls return the
    /// already-installed collector unchanged.
    pub fn install() -> &'static Collector {
        Collector::install_with_capacity(DEFAULT_CAPACITY)
    }

    /// Install with an explicit span-buffer capacity. The buffer is
    /// fully preallocated here so the record path never grows it.
    pub fn install_with_capacity(capacity: usize) -> &'static Collector {
        COLLECTOR.get_or_init(|| Collector {
            epoch: Instant::now(),
            enabled: AtomicBool::new(true),
            next_span_id: AtomicU64::new(1),
            dropped: AtomicU64::new(0),
            events: Mutex::new(Vec::with_capacity(capacity)),
            capacity,
        })
    }

    /// The installed collector, if any.
    #[must_use]
    pub fn get() -> Option<&'static Collector> {
        COLLECTOR.get()
    }

    /// Turn span recording on or off. Metrics handles are unaffected;
    /// this gates only the trace buffer and the solver-side
    /// [`crate::record_enabled`] fast path.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Is recording currently on?
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Events dropped because the buffer was full.
    #[must_use]
    pub fn dropped_events(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Copy out the recorded events (in completion order).
    #[must_use]
    pub fn events(&self) -> Vec<SpanEvent> {
        self.events.lock().unwrap_or_else(std::sync::PoisonError::into_inner).clone()
    }

    /// Number of recorded events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.lock().unwrap_or_else(std::sync::PoisonError::into_inner).len()
    }

    /// Is the buffer empty?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Discard all recorded events (capacity is retained).
    pub fn clear(&self) {
        self.events.lock().unwrap_or_else(std::sync::PoisonError::into_inner).clear();
        self.dropped.store(0, Ordering::Relaxed);
    }

    fn record(&self, event: SpanEvent) {
        let mut events = self.events.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if events.len() < self.capacity {
            events.push(event);
        } else {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn micros_since_epoch(&self, at: Instant) -> u64 {
        u64::try_from(at.duration_since(self.epoch).as_micros()).unwrap_or(u64::MAX)
    }
}

/// Is a collector installed *and* enabled? One `OnceLock` load plus one
/// relaxed atomic load — the gate every instrumentation site sits
/// behind.
#[must_use]
pub fn recording() -> bool {
    Collector::get().is_some_and(Collector::is_enabled)
}

fn thread_id() -> u64 {
    THREAD_ID.with(|tid| {
        let id = tid.get();
        if id != 0 {
            return id;
        }
        let id = NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed);
        tid.set(id);
        id
    })
}

/// RAII guard for one span: created by [`crate::span!`], records on drop.
#[derive(Debug)]
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

#[derive(Debug)]
struct ActiveSpan {
    collector: &'static Collector,
    name: &'static str,
    start: Instant,
    id: u64,
    parent_id: u64,
}

impl SpanGuard {
    /// This span's id, or `None` for an inert guard. Lets a caller that
    /// opened a probe span find its children in the event buffer later
    /// (events carry `parent_id`).
    #[must_use]
    pub fn id(&self) -> Option<u64> {
        self.active.as_ref().map(|a| a.id)
    }

    /// Enter a span named `name`. Inert (and free) when no collector is
    /// installed or recording is disabled.
    #[must_use]
    pub fn enter(name: &'static str) -> SpanGuard {
        let Some(collector) = Collector::get().filter(|c| c.is_enabled()) else {
            return SpanGuard { active: None };
        };
        let id = collector.next_span_id.fetch_add(1, Ordering::Relaxed);
        let parent_id = CURRENT_SPAN.with(|cur| cur.replace(id));
        SpanGuard {
            active: Some(ActiveSpan {
                collector,
                name,
                start: Instant::now(),
                id,
                parent_id,
            }),
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(active) = self.active.take() else { return };
        let end = Instant::now();
        CURRENT_SPAN.with(|cur| cur.set(active.parent_id));
        let start_micros = active.collector.micros_since_epoch(active.start);
        let end_micros = active.collector.micros_since_epoch(end);
        active.collector.record(SpanEvent {
            name: active.name,
            start_micros,
            duration_micros: end_micros.saturating_sub(start_micros),
            thread_id: thread_id(),
            id: active.id,
            parent_id: active.parent_id,
        });
    }
}

/// Enter a span: `let _span = aa_obs::span!("superopt");`. The span
/// closes when the guard drops. No-op unless a collector is installed
/// and enabled.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::trace::SpanGuard::enter($name)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    // The collector is process-global, so all span behavior is covered
    // by one test body (sibling tests would race on install/enable).
    #[test]
    fn spans_nest_and_record() {
        let collector = Collector::install_with_capacity(16);
        collector.clear();
        collector.set_enabled(true);
        {
            let _outer = crate::span!("outer");
            let _inner = crate::span!("inner");
        }
        let events = collector.events();
        assert_eq!(events.len(), 2, "{events:?}");
        // Inner drops first.
        assert_eq!(events[0].name, "inner");
        assert_eq!(events[1].name, "outer");
        assert_eq!(events[0].parent_id, events[1].id, "inner's parent is outer");
        assert_eq!(events[1].parent_id, 0, "outer is a root");
        assert_eq!(events[0].thread_id, events[1].thread_id);
        assert!(events[0].start_micros >= events[1].start_micros);

        // Disabled ⇒ inert guards, nothing recorded.
        collector.set_enabled(false);
        assert!(!recording());
        {
            let _off = crate::span!("off");
        }
        assert_eq!(collector.len(), 2);

        // Full buffer ⇒ drop-new, counted.
        collector.set_enabled(true);
        for _ in 0..40 {
            let _s = crate::span!("fill");
        }
        assert_eq!(collector.len(), 16);
        assert!(collector.dropped_events() > 0);
        collector.clear();
        assert!(collector.is_empty());
        assert_eq!(collector.dropped_events(), 0);
    }
}
