//! Lightweight structured spans.
//!
//! A span is entered with [`crate::span!`] and records, on drop, a
//! fixed-size [`SpanEvent`] — name, enter/exit timestamps relative to
//! the collector epoch, a per-thread id and a parent link — into the
//! installed [`Collector`]'s preallocated buffer.
//!
//! Cost model, because this wraps the solver hot path:
//!
//! * **no collector installed / disabled**: one relaxed atomic load and
//!   a branch per span — effectively free, and `SpanGuard` carries no
//!   state (`active: None`).
//! * **collector live**: two `Instant::now()` calls, two thread-local
//!   `Cell` updates, and one push into a `Mutex`-guarded `Vec` that was
//!   preallocated at install time. **No heap allocation** on any record
//!   path (span names are `&'static str`); when the buffer is full new
//!   events are counted in `dropped_events` and discarded rather than
//!   growing the buffer.
//!
//! Parent links are tracked per thread (a thread-local current-span
//! cell), so spans opened on pool worker threads start a fresh chain on
//! that thread — exactly how a Chrome trace renders them (one lane per
//! thread id).

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Default span-buffer capacity (events) for [`Collector::install`].
pub const DEFAULT_CAPACITY: usize = 1 << 16;

/// One completed span.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanEvent {
    /// Span name (static — recording never allocates).
    pub name: &'static str,
    /// Microseconds from the collector epoch to span entry.
    pub start_micros: u64,
    /// Span duration in microseconds.
    pub duration_micros: u64,
    /// Dense per-process thread id (assigned on each thread's first span).
    pub thread_id: u64,
    /// Unique span id (never 0).
    pub id: u64,
    /// Id of the span active on this thread at entry; 0 for roots.
    pub parent_id: u64,
}

/// The process-wide span collector. Installed at most once; recording
/// compiles down to a no-op check when it is absent or disabled.
#[derive(Debug)]
pub struct Collector {
    epoch: Instant,
    enabled: AtomicBool,
    next_span_id: AtomicU64,
    dropped: AtomicU64,
    events: Mutex<EventBuf>,
    capacity: usize,
}

/// The span buffer plus a monotonic drain base: `base` counts events
/// that have left the front of `events` (via [`Collector::drain_through`]
/// or [`Collector::clear`]), so event `events[i]` has the stable global
/// index `base + i`. Cursors handed out by [`Collector::events_since`]
/// are global indices and stay valid across drains.
#[derive(Debug)]
struct EventBuf {
    events: Vec<SpanEvent>,
    base: u64,
}

static COLLECTOR: OnceLock<Collector> = OnceLock::new();
static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static THREAD_ID: Cell<u64> = const { Cell::new(0) };
    static CURRENT_SPAN: Cell<u64> = const { Cell::new(0) };
}

impl Collector {
    /// Install the global collector (enabled, [`DEFAULT_CAPACITY`]
    /// events) and return it. Idempotent: later calls return the
    /// already-installed collector unchanged.
    pub fn install() -> &'static Collector {
        Collector::install_with_capacity(DEFAULT_CAPACITY)
    }

    /// Install with an explicit span-buffer capacity. The buffer is
    /// fully preallocated here so the record path never grows it.
    pub fn install_with_capacity(capacity: usize) -> &'static Collector {
        COLLECTOR.get_or_init(|| Collector {
            epoch: Instant::now(),
            enabled: AtomicBool::new(true),
            next_span_id: AtomicU64::new(1),
            dropped: AtomicU64::new(0),
            events: Mutex::new(EventBuf { events: Vec::with_capacity(capacity), base: 0 }),
            capacity,
        })
    }

    /// The installed collector, if any.
    #[must_use]
    pub fn get() -> Option<&'static Collector> {
        COLLECTOR.get()
    }

    /// Turn span recording on or off. Metrics handles are unaffected;
    /// this gates only the trace buffer and the solver-side
    /// [`crate::record_enabled`] fast path.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Is recording currently on?
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Events dropped because the buffer was full.
    #[must_use]
    pub fn dropped_events(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Copy out the recorded (undrained) events, in completion order.
    #[must_use]
    pub fn events(&self) -> Vec<SpanEvent> {
        self.events.lock().unwrap_or_else(std::sync::PoisonError::into_inner).events.clone()
    }

    /// Events with global index `>= cursor` plus the next cursor (the
    /// global index one past the last returned event). A shipper that
    /// starts at cursor 0 and always feeds the returned cursor back in
    /// sees every buffered event exactly once — events are never
    /// re-sent and never skipped (a full buffer counts drops in
    /// [`Collector::dropped_events`] instead of overwriting). A cursor
    /// behind the drain base yields from the oldest retained event.
    #[must_use]
    pub fn events_since(&self, cursor: u64) -> (Vec<SpanEvent>, u64) {
        let buf = self.events.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let start = usize::try_from(cursor.saturating_sub(buf.base))
            .unwrap_or(buf.events.len())
            .min(buf.events.len());
        let tail = buf.events[start..].to_vec();
        (tail, buf.base + buf.events.len() as u64)
    }

    /// Drop events with global index `< cursor` from the front of the
    /// buffer, freeing capacity for new spans. Call after the events up
    /// to `cursor` (from [`Collector::events_since`]) have been shipped.
    pub fn drain_through(&self, cursor: u64) {
        let mut buf = self.events.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let n = usize::try_from(cursor.saturating_sub(buf.base))
            .unwrap_or(buf.events.len())
            .min(buf.events.len());
        if n > 0 {
            buf.events.drain(..n);
            buf.base += n as u64;
        }
    }

    /// Number of recorded (undrained) events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.lock().unwrap_or_else(std::sync::PoisonError::into_inner).events.len()
    }

    /// Is the buffer empty?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Discard all recorded events (capacity is retained). Advances the
    /// drain base so [`Collector::events_since`] cursors stay monotonic.
    pub fn clear(&self) {
        let mut buf = self.events.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        buf.base += buf.events.len() as u64;
        buf.events.clear();
        self.dropped.store(0, Ordering::Relaxed);
    }

    /// Microseconds from the collector epoch to now — the clock that
    /// timestamps every span, exposed so cross-process traces can be
    /// aligned by exchanging "my now" at handshake time.
    #[must_use]
    pub fn now_micros(&self) -> u64 {
        self.micros_since_epoch(Instant::now())
    }

    /// Microseconds from the collector epoch to `at` (saturating at 0
    /// for instants before the epoch).
    #[must_use]
    pub fn micros_at(&self, at: Instant) -> u64 {
        if at < self.epoch {
            return 0;
        }
        self.micros_since_epoch(at)
    }

    /// Allocate a span id without recording anything — for spans whose
    /// id must be known up front (a request span propagated to workers
    /// at dispatch) but whose duration is only known at completion.
    /// Pair with [`Collector::record_prealloc`].
    #[must_use]
    pub fn alloc_span_id(&self) -> u64 {
        self.next_span_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Record a span under a previously allocated id (see
    /// [`Collector::alloc_span_id`]) with explicit timestamps.
    pub fn record_prealloc(
        &self,
        id: u64,
        name: &'static str,
        start_micros: u64,
        duration_micros: u64,
        parent_id: u64,
    ) {
        self.record(SpanEvent {
            name,
            start_micros,
            duration_micros,
            thread_id: thread_id(),
            id,
            parent_id,
        });
    }

    /// Record a span with explicit timestamps, bypassing the RAII
    /// guard. For phase spans reconstructed after the fact (a front-end
    /// marking queue-wait or wire time around an already-completed
    /// request). Allocates and returns the span id; `parent_id` 0 makes
    /// it a root.
    pub fn record_manual(
        &self,
        name: &'static str,
        start_micros: u64,
        duration_micros: u64,
        parent_id: u64,
    ) -> u64 {
        let id = self.alloc_span_id();
        self.record_prealloc(id, name, start_micros, duration_micros, parent_id);
        id
    }

    fn record(&self, event: SpanEvent) {
        let mut buf = self.events.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if buf.events.len() < self.capacity {
            buf.events.push(event);
        } else {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn micros_since_epoch(&self, at: Instant) -> u64 {
        u64::try_from(at.duration_since(self.epoch).as_micros()).unwrap_or(u64::MAX)
    }
}

/// Is a collector installed *and* enabled? One `OnceLock` load plus one
/// relaxed atomic load — the gate every instrumentation site sits
/// behind.
#[must_use]
pub fn recording() -> bool {
    Collector::get().is_some_and(Collector::is_enabled)
}

fn thread_id() -> u64 {
    THREAD_ID.with(|tid| {
        let id = tid.get();
        if id != 0 {
            return id;
        }
        let id = NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed);
        tid.set(id);
        id
    })
}

/// RAII guard for one span: created by [`crate::span!`], records on drop.
#[derive(Debug)]
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

#[derive(Debug)]
struct ActiveSpan {
    collector: &'static Collector,
    name: &'static str,
    start: Instant,
    id: u64,
    parent_id: u64,
}

impl SpanGuard {
    /// This span's id, or `None` for an inert guard. Lets a caller that
    /// opened a probe span find its children in the event buffer later
    /// (events carry `parent_id`).
    #[must_use]
    pub fn id(&self) -> Option<u64> {
        self.active.as_ref().map(|a| a.id)
    }

    /// Enter a span named `name`. Inert (and free) when no collector is
    /// installed or recording is disabled.
    #[must_use]
    pub fn enter(name: &'static str) -> SpanGuard {
        let Some(collector) = Collector::get().filter(|c| c.is_enabled()) else {
            return SpanGuard { active: None };
        };
        let id = collector.next_span_id.fetch_add(1, Ordering::Relaxed);
        let parent_id = CURRENT_SPAN.with(|cur| cur.replace(id));
        SpanGuard {
            active: Some(ActiveSpan {
                collector,
                name,
                start: Instant::now(),
                id,
                parent_id,
            }),
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(active) = self.active.take() else { return };
        let end = Instant::now();
        CURRENT_SPAN.with(|cur| cur.set(active.parent_id));
        let start_micros = active.collector.micros_since_epoch(active.start);
        let end_micros = active.collector.micros_since_epoch(end);
        active.collector.record(SpanEvent {
            name: active.name,
            start_micros,
            duration_micros: end_micros.saturating_sub(start_micros),
            thread_id: thread_id(),
            id: active.id,
            parent_id: active.parent_id,
        });
    }
}

/// Enter a span: `let _span = aa_obs::span!("superopt");`. The span
/// closes when the guard drops. No-op unless a collector is installed
/// and enabled.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::trace::SpanGuard::enter($name)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    // The collector is process-global, so all span behavior is covered
    // by one test body (sibling tests would race on install/enable).
    #[test]
    fn spans_nest_and_record() {
        let collector = Collector::install_with_capacity(16);
        collector.clear();
        collector.set_enabled(true);
        {
            let _outer = crate::span!("outer");
            let _inner = crate::span!("inner");
        }
        let events = collector.events();
        assert_eq!(events.len(), 2, "{events:?}");
        // Inner drops first.
        assert_eq!(events[0].name, "inner");
        assert_eq!(events[1].name, "outer");
        assert_eq!(events[0].parent_id, events[1].id, "inner's parent is outer");
        assert_eq!(events[1].parent_id, 0, "outer is a root");
        assert_eq!(events[0].thread_id, events[1].thread_id);
        assert!(events[0].start_micros >= events[1].start_micros);

        // Disabled ⇒ inert guards, nothing recorded.
        collector.set_enabled(false);
        assert!(!recording());
        {
            let _off = crate::span!("off");
        }
        assert_eq!(collector.len(), 2);

        // Full buffer ⇒ drop-new, counted.
        collector.set_enabled(true);
        for _ in 0..40 {
            let _s = crate::span!("fill");
        }
        assert_eq!(collector.len(), 16);
        assert!(collector.dropped_events() > 0);
        collector.clear();
        assert!(collector.is_empty());
        assert_eq!(collector.dropped_events(), 0);

        // Cursor API: events_since + drain_through never re-send or
        // lose events, and clear() keeps cursors monotonic.
        let (_, cursor0) = collector.events_since(0);
        {
            let _a = crate::span!("ship_a");
        }
        {
            let _b = crate::span!("ship_b");
        }
        let (batch1, cursor1) = collector.events_since(cursor0);
        assert_eq!(batch1.iter().map(|e| e.name).collect::<Vec<_>>(), ["ship_a", "ship_b"]);
        assert_eq!(cursor1, cursor0 + 2);
        collector.drain_through(cursor1);
        assert!(collector.is_empty(), "drained events leave the buffer");
        let (batch_again, cursor_same) = collector.events_since(cursor1);
        assert!(batch_again.is_empty(), "nothing re-sent after a drain");
        assert_eq!(cursor_same, cursor1);
        {
            let _c = crate::span!("ship_c");
        }
        let (batch2, cursor2) = collector.events_since(cursor1);
        assert_eq!(batch2.len(), 1);
        assert_eq!(batch2[0].name, "ship_c");
        assert_eq!(cursor2, cursor1 + 1);
        // A stale cursor (behind the drain base) yields the oldest
        // retained events rather than panicking or skipping ahead.
        let (from_zero, _) = collector.events_since(0);
        assert_eq!(from_zero.len(), 1);
        collector.clear();
        let (_, cursor3) = collector.events_since(0);
        assert!(cursor3 >= cursor2, "clear() keeps cursors monotonic");

        // Manual spans land in the buffer with a fresh id and the
        // caller-supplied parent link and timestamps.
        let parent = collector.record_manual("request", 10, 500, 0);
        let child = collector.record_manual("queue_wait", 10, 40, parent);
        assert_ne!(parent, 0);
        assert_ne!(child, parent);
        let manual = collector.events();
        assert_eq!(manual.len(), 2);
        assert_eq!(manual[1].parent_id, parent);
        assert_eq!((manual[0].start_micros, manual[0].duration_micros), (10, 500));
        let at = Instant::now();
        assert!(collector.micros_at(at) <= collector.now_micros());
        collector.clear();
    }
}
