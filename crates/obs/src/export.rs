//! Exporters: Prometheus text exposition, a JSON metrics snapshot, a
//! Chrome-trace (`trace_event`) span dump, and a minimal scrape server.
//!
//! All writers are hand-rolled over `std` — this crate cannot depend on
//! `serde_json` (it sits below everything in the workspace graph), and
//! the formats involved are small and fixed.

use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};

use crate::metrics::{bucket_boundary_micros, Metric, Registry, NUM_BOUNDARIES};
use crate::trace::Collector;

/// Render `registry` in the Prometheus text exposition format.
///
/// Counters and gauges are one sample each; histograms emit cumulative
/// `_bucket{le="…"}` samples (only up to the last non-empty bucket, to
/// keep the page readable), `_sum` and `_count`. Histogram names carry
/// their unit (`…_micros`) so the µs-domain buckets are unambiguous.
#[must_use]
pub fn prometheus_text(registry: &Registry) -> String {
    let mut out = String::new();
    let mut last_type: Option<(String, &'static str)> = None;
    for (key, metric) in registry.snapshot() {
        let (name, labels) = split_key(&key);
        let kind = match metric {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        };
        if last_type.as_ref() != Some(&(name.to_string(), kind)) {
            let _ = writeln!(out, "# TYPE {name} {kind}");
            last_type = Some((name.to_string(), kind));
        }
        match metric {
            Metric::Counter(c) => {
                let _ = writeln!(out, "{key} {}", c.get());
            }
            Metric::Gauge(g) => {
                let _ = writeln!(out, "{key} {}", g.get());
            }
            Metric::Histogram(h) => {
                let counts = h.bucket_counts();
                let last_nonempty = counts.iter().rposition(|&c| c > 0);
                let mut cumulative = 0u64;
                for (i, &c) in counts.iter().enumerate().take(NUM_BOUNDARIES) {
                    cumulative += c;
                    if last_nonempty.is_some_and(|l| i <= l) {
                        let le = bucket_boundary_micros(i);
                        let _ = writeln!(
                            out,
                            "{name}_bucket{{{}le=\"{le}\"}} {cumulative}",
                            label_prefix(labels)
                        );
                    }
                }
                let _ = writeln!(
                    out,
                    "{name}_bucket{{{}le=\"+Inf\"}} {}",
                    label_prefix(labels),
                    h.count()
                );
                let _ = writeln!(out, "{name}_sum{labels} {}", h.sum_micros());
                let _ = writeln!(out, "{name}_count{labels} {}", h.count());
            }
        }
    }
    out
}

/// Split an export key `name{k="v"}` into `(name, "{k=\"v\"}" | "")`.
fn split_key(key: &str) -> (&str, &str) {
    match key.find('{') {
        Some(i) => key.split_at(i),
        None => (key, ""),
    }
}

/// `{k="v"}` → `k="v",` (to splice before `le="…"`); empty stays empty.
fn label_prefix(labels: &str) -> String {
    if labels.is_empty() {
        String::new()
    } else {
        format!("{},", &labels[1..labels.len() - 1])
    }
}

/// Render `registry` as a JSON snapshot:
/// `{"counters":{…},"gauges":{…},"histograms":{name:{count,sum_micros,
/// max_micros,p50_micros,p90_micros,p99_micros}}}`.
#[must_use]
pub fn json_snapshot(registry: &Registry) -> String {
    let mut counters = String::new();
    let mut gauges = String::new();
    let mut histograms = String::new();
    for (key, metric) in registry.snapshot() {
        match metric {
            Metric::Counter(c) => {
                if !counters.is_empty() {
                    counters.push(',');
                }
                let _ = write!(counters, "{}:{}", json_string(&key), c.get());
            }
            Metric::Gauge(g) => {
                if !gauges.is_empty() {
                    gauges.push(',');
                }
                let _ = write!(gauges, "{}:{}", json_string(&key), json_f64(g.get()));
            }
            Metric::Histogram(h) => {
                if !histograms.is_empty() {
                    histograms.push(',');
                }
                let _ = write!(
                    histograms,
                    "{}:{{\"count\":{},\"sum_micros\":{},\"max_micros\":{},\
                     \"p50_micros\":{},\"p90_micros\":{},\"p99_micros\":{}}}",
                    json_string(&key),
                    h.count(),
                    h.sum_micros(),
                    h.max_micros(),
                    h.quantile_micros(0.50),
                    h.quantile_micros(0.90),
                    h.quantile_micros(0.99),
                );
            }
        }
    }
    format!("{{\"counters\":{{{counters}}},\"gauges\":{{{gauges}}},\"histograms\":{{{histograms}}}}}")
}

/// Render the collector's span buffer in the Chrome `trace_event`
/// format (JSON object form, complete `"ph":"X"` events, µs
/// timestamps): load the file at `chrome://tracing` or
/// <https://ui.perfetto.dev> to see the solve as a flamegraph.
#[must_use]
pub fn chrome_trace_json(collector: &Collector) -> String {
    let mut events = String::new();
    for e in collector.events() {
        if !events.is_empty() {
            events.push(',');
        }
        let _ = write!(
            events,
            "{{\"name\":{},\"cat\":\"aa\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
             \"pid\":1,\"tid\":{},\"args\":{{\"id\":{},\"parent\":{}}}}}",
            json_string(e.name),
            e.start_micros,
            e.duration_micros,
            e.thread_id,
            e.id,
            e.parent_id,
        );
    }
    format!(
        "{{\"traceEvents\":[{events}],\"displayTimeUnit\":\"ms\",\
         \"otherData\":{{\"dropped_events\":{}}}}}",
        collector.dropped_events()
    )
}

/// Escape a string as a JSON string literal.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Format an `f64` as a JSON number (JSON has no NaN/Inf: emit null).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Bind `addr` and serve `registry` over HTTP on a detached thread:
/// `GET /metrics` → Prometheus text, `GET /metrics.json` → JSON
/// snapshot. Returns the actual bound address (so `…:0` picks a free
/// port). The thread runs until the process exits.
///
/// # Errors
/// Propagates the bind failure.
pub fn spawn_metrics_server(
    addr: &str,
    registry: &'static Registry,
) -> std::io::Result<SocketAddr> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    std::thread::Builder::new()
        .name("aa-metrics".to_string())
        .spawn(move || {
            for stream in listener.incoming() {
                let Ok(stream) = stream else { continue };
                // One tiny request at a time; a scrape endpoint needs
                // no concurrency and must never take down the server.
                let _ = handle_scrape(stream, registry);
            }
        })?;
    Ok(local)
}

fn handle_scrape(stream: TcpStream, registry: &Registry) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Drain headers so well-behaved clients see a clean close.
    let mut line = String::new();
    while reader.read_line(&mut line)? > 0 && line != "\r\n" && line != "\n" {
        line.clear();
    }
    let path = request_line.split_whitespace().nth(1).unwrap_or("/");
    let (status, content_type, body) = match path {
        "/metrics" => (
            "200 OK",
            "text/plain; version=0.0.4",
            prometheus_text(registry),
        ),
        "/metrics.json" => ("200 OK", "application/json", json_snapshot(registry)),
        _ => ("404 Not Found", "text/plain", "not found\n".to_string()),
    };
    let mut stream = reader.into_inner();
    write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prometheus_text_covers_all_kinds() {
        let r = Registry::new();
        r.counter("aa_solve_total").add(3);
        r.gauge("aa_queue_depth").set(2.0);
        let h = r.histogram("aa_latency_micros");
        h.record_micros(5);
        h.record_micros(1_500);
        let text = prometheus_text(&r);
        assert!(text.contains("# TYPE aa_solve_total counter"), "{text}");
        assert!(text.contains("aa_solve_total 3"), "{text}");
        assert!(text.contains("aa_queue_depth 2"), "{text}");
        assert!(text.contains("# TYPE aa_latency_micros histogram"), "{text}");
        assert!(text.contains("aa_latency_micros_bucket{le=\"5\"} 1"), "{text}");
        // Cumulative by the 2000 µs boundary, and the +Inf closing sample.
        assert!(text.contains("aa_latency_micros_bucket{le=\"2000\"} 2"), "{text}");
        assert!(text.contains("aa_latency_micros_bucket{le=\"+Inf\"} 2"), "{text}");
        assert!(text.contains("aa_latency_micros_sum 1505"), "{text}");
        assert!(text.contains("aa_latency_micros_count 2"), "{text}");
    }

    #[test]
    fn labeled_histogram_places_label_before_le() {
        let r = Registry::new();
        r.histogram_labeled("aa_tier_micros", "tier", "algo2").record_micros(10);
        let text = prometheus_text(&r);
        assert!(
            text.contains("aa_tier_micros_bucket{tier=\"algo2\",le=\"10\"} 1"),
            "{text}"
        );
        assert!(text.contains("aa_tier_micros_sum{tier=\"algo2\"} 10"), "{text}");
    }

    #[test]
    fn json_snapshot_is_well_formed() {
        let r = Registry::new();
        r.counter("aa_a_total").inc();
        r.gauge("aa_b").set(1.25);
        r.histogram("aa_c_micros").record_micros(42);
        let json = json_snapshot(&r);
        assert!(json.contains("\"aa_a_total\":1"), "{json}");
        assert!(json.contains("\"aa_b\":1.25"), "{json}");
        assert!(json.contains("\"count\":1"), "{json}");
        assert!(json.contains("\"p99_micros\":42"), "{json}");
        // Braces balance — cheap structural sanity without a parser.
        let open = json.matches('{').count();
        let close = json.matches('}').count();
        assert_eq!(open, close, "{json}");
    }
}
