//! Exporters: Prometheus text exposition, a JSON metrics snapshot, a
//! Chrome-trace (`trace_event`) span dump, and a minimal scrape server.
//!
//! All writers are hand-rolled over `std` — this crate cannot depend on
//! `serde_json` (it sits below everything in the workspace graph), and
//! the formats involved are small and fixed.

use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};

use crate::metrics::{bucket_boundary_micros, Metric, Registry, NUM_BOUNDARIES};
use crate::trace::Collector;

/// Render `registry` in the Prometheus text exposition format.
///
/// Counters and gauges are one sample each; histograms emit cumulative
/// `_bucket{le="…"}` samples (only up to the last non-empty bucket, to
/// keep the page readable), `_sum` and `_count`. Histogram names carry
/// their unit (`…_micros`) so the µs-domain buckets are unambiguous.
///
/// Uses the *federated* snapshot: on a fleet front-end the page also
/// carries every worker's shipped series (`worker=`-labeled) and the
/// `worker="fleet"` histogram aggregates; on a plain process the two
/// snapshots are identical.
#[must_use]
pub fn prometheus_text(registry: &Registry) -> String {
    let mut out = String::new();
    let mut last_type: Option<(String, &'static str)> = None;
    for (key, metric) in registry.snapshot_federated() {
        let (name, labels) = split_key(&key);
        let kind = match metric {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        };
        if last_type.as_ref() != Some(&(name.to_string(), kind)) {
            let _ = writeln!(out, "# TYPE {name} {kind}");
            last_type = Some((name.to_string(), kind));
        }
        match metric {
            Metric::Counter(c) => {
                let _ = writeln!(out, "{key} {}", c.get());
            }
            Metric::Gauge(g) => {
                let _ = writeln!(out, "{key} {}", g.get());
            }
            Metric::Histogram(h) => {
                let counts = h.bucket_counts();
                let last_nonempty = counts.iter().rposition(|&c| c > 0);
                let mut cumulative = 0u64;
                for (i, &c) in counts.iter().enumerate().take(NUM_BOUNDARIES) {
                    cumulative += c;
                    if last_nonempty.is_some_and(|l| i <= l) {
                        let le = bucket_boundary_micros(i);
                        let _ = writeln!(
                            out,
                            "{name}_bucket{{{}le=\"{le}\"}} {cumulative}",
                            label_prefix(labels)
                        );
                    }
                }
                let _ = writeln!(
                    out,
                    "{name}_bucket{{{}le=\"+Inf\"}} {}",
                    label_prefix(labels),
                    h.count()
                );
                let _ = writeln!(out, "{name}_sum{labels} {}", h.sum_micros());
                let _ = writeln!(out, "{name}_count{labels} {}", h.count());
            }
        }
    }
    out
}

/// Split an export key `name{k="v"}` into `(name, "{k=\"v\"}" | "")`.
fn split_key(key: &str) -> (&str, &str) {
    match key.find('{') {
        Some(i) => key.split_at(i),
        None => (key, ""),
    }
}

/// `{k="v"}` → `k="v",` (to splice before `le="…"`); empty stays empty.
fn label_prefix(labels: &str) -> String {
    if labels.is_empty() {
        String::new()
    } else {
        format!("{},", &labels[1..labels.len() - 1])
    }
}

/// Render `registry` as a JSON snapshot:
/// `{"counters":{…},"gauges":{…},"histograms":{name:{count,sum_micros,
/// max_micros,p50_micros,p90_micros,p99_micros}}}`. Federated worker
/// series are included, same as [`prometheus_text`].
#[must_use]
pub fn json_snapshot(registry: &Registry) -> String {
    let mut counters = String::new();
    let mut gauges = String::new();
    let mut histograms = String::new();
    for (key, metric) in registry.snapshot_federated() {
        match metric {
            Metric::Counter(c) => {
                if !counters.is_empty() {
                    counters.push(',');
                }
                let _ = write!(counters, "{}:{}", json_string(&key), c.get());
            }
            Metric::Gauge(g) => {
                if !gauges.is_empty() {
                    gauges.push(',');
                }
                let _ = write!(gauges, "{}:{}", json_string(&key), json_f64(g.get()));
            }
            Metric::Histogram(h) => {
                if !histograms.is_empty() {
                    histograms.push(',');
                }
                let _ = write!(
                    histograms,
                    "{}:{{\"count\":{},\"sum_micros\":{},\"max_micros\":{},\
                     \"p50_micros\":{},\"p90_micros\":{},\"p99_micros\":{}}}",
                    json_string(&key),
                    h.count(),
                    h.sum_micros(),
                    h.max_micros(),
                    h.quantile_micros(0.50),
                    h.quantile_micros(0.90),
                    h.quantile_micros(0.99),
                );
            }
        }
    }
    format!("{{\"counters\":{{{counters}}},\"gauges\":{{{gauges}}},\"histograms\":{{{histograms}}}}}")
}

/// Render the collector's span buffer in the Chrome `trace_event`
/// format (JSON object form, complete `"ph":"X"` events, µs
/// timestamps): load the file at `chrome://tracing` or
/// <https://ui.perfetto.dev> to see the solve as a flamegraph.
#[must_use]
pub fn chrome_trace_json(collector: &Collector) -> String {
    let mut events = String::new();
    for e in collector.events() {
        if !events.is_empty() {
            events.push(',');
        }
        let _ = write!(
            events,
            "{{\"name\":{},\"cat\":\"aa\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
             \"pid\":1,\"tid\":{},\"args\":{{\"id\":{},\"parent\":{}}}}}",
            json_string(e.name),
            e.start_micros,
            e.duration_micros,
            e.thread_id,
            e.id,
            e.parent_id,
        );
    }
    format!(
        "{{\"traceEvents\":[{events}],\"displayTimeUnit\":\"ms\",\
         \"otherData\":{{\"dropped_events\":{}}}}}",
        collector.dropped_events()
    )
}

/// One process lane of a merged (multi-process) Chrome trace: the
/// front-end is lane/pid 1; each worker incarnation gets its own pid
/// and a human-readable label (`worker 2 pid 4242`).
#[derive(Clone, Debug)]
pub struct TraceLane {
    /// The `pid` every event in this lane renders under.
    pub pid: u32,
    /// Lane label, emitted as `process_name` metadata.
    pub label: String,
    /// The lane's span events, ids already remapped into the shared id
    /// space and timestamps already clock-aligned by the caller.
    pub events: Vec<LaneEvent>,
}

/// One span event inside a [`TraceLane`]. Unlike [`SpanEvent`] the name
/// is owned (it crossed a process boundary) and the event carries the
/// trace id it belongs to (0 when untraced).
#[derive(Clone, Debug)]
pub struct LaneEvent {
    /// Span name.
    pub name: String,
    /// Start, µs in the *front-end* collector's clock domain.
    pub start_micros: u64,
    /// Duration, µs.
    pub duration_micros: u64,
    /// Originating thread id (lane-local).
    pub thread_id: u64,
    /// Span id, unique across the whole merged trace.
    pub id: u64,
    /// Parent span id in the merged id space; 0 for roots.
    pub parent_id: u64,
    /// The request trace this span belongs to; 0 for untraced spans.
    pub trace_id: u64,
}

/// Render a multi-process fleet trace in the Chrome `trace_event`
/// format: one `pid` lane per entry in `lanes` (named via
/// `process_name` metadata events), complete `"ph":"X"` events
/// otherwise identical in shape to [`chrome_trace_json`], and the
/// fleet-wide dropped-span count in `otherData`. The single-process
/// exporter is untouched — its `pid:1` contract is pinned by CI.
#[must_use]
pub fn chrome_trace_merged(lanes: &[TraceLane], dropped_total: u64) -> String {
    let mut events = String::new();
    for lane in lanes {
        if !events.is_empty() {
            events.push(',');
        }
        let _ = write!(
            events,
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{},\"tid\":0,\
             \"args\":{{\"name\":{}}}}}",
            lane.pid,
            json_string(&lane.label),
        );
        for e in &lane.events {
            let _ = write!(
                events,
                ",{{\"name\":{},\"cat\":\"aa\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                 \"pid\":{},\"tid\":{},\"args\":{{\"id\":{},\"parent\":{},\"trace\":{}}}}}",
                json_string(&e.name),
                e.start_micros,
                e.duration_micros,
                lane.pid,
                e.thread_id,
                e.id,
                e.parent_id,
                e.trace_id,
            );
        }
    }
    format!(
        "{{\"traceEvents\":[{events}],\"displayTimeUnit\":\"ms\",\
         \"otherData\":{{\"dropped_events\":{dropped_total}}}}}"
    )
}

/// Escape a string as a JSON string literal.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Format an `f64` as a JSON number (JSON has no NaN/Inf: emit null).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Bind `addr` and serve `registry` over HTTP on a detached thread:
/// `GET /metrics` → Prometheus text, `GET /metrics.json` → JSON
/// snapshot. Returns the actual bound address (so `…:0` picks a free
/// port). The thread runs until the process exits.
///
/// # Errors
/// Propagates the bind failure.
pub fn spawn_metrics_server(
    addr: &str,
    registry: &'static Registry,
) -> std::io::Result<SocketAddr> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    std::thread::Builder::new()
        .name("aa-metrics".to_string())
        .spawn(move || {
            for stream in listener.incoming() {
                let Ok(stream) = stream else { continue };
                // One tiny request at a time; a scrape endpoint needs
                // no concurrency and must never take down the server.
                let _ = handle_scrape(stream, registry);
            }
        })?;
    Ok(local)
}

fn handle_scrape(stream: TcpStream, registry: &Registry) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Drain headers so well-behaved clients see a clean close.
    let mut line = String::new();
    while reader.read_line(&mut line)? > 0 && line != "\r\n" && line != "\n" {
        line.clear();
    }
    let path = request_line.split_whitespace().nth(1).unwrap_or("/");
    let (status, content_type, body) = match path {
        "/metrics" => (
            "200 OK",
            "text/plain; version=0.0.4",
            prometheus_text(registry),
        ),
        "/metrics.json" => ("200 OK", "application/json", json_snapshot(registry)),
        _ => ("404 Not Found", "text/plain", "not found\n".to_string()),
    };
    let mut stream = reader.into_inner();
    write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prometheus_text_covers_all_kinds() {
        let r = Registry::new();
        r.counter("aa_solve_total").add(3);
        r.gauge("aa_queue_depth").set(2.0);
        let h = r.histogram("aa_latency_micros");
        h.record_micros(5);
        h.record_micros(1_500);
        let text = prometheus_text(&r);
        assert!(text.contains("# TYPE aa_solve_total counter"), "{text}");
        assert!(text.contains("aa_solve_total 3"), "{text}");
        assert!(text.contains("aa_queue_depth 2"), "{text}");
        assert!(text.contains("# TYPE aa_latency_micros histogram"), "{text}");
        assert!(text.contains("aa_latency_micros_bucket{le=\"5\"} 1"), "{text}");
        // Cumulative by the 2000 µs boundary, and the +Inf closing sample.
        assert!(text.contains("aa_latency_micros_bucket{le=\"2000\"} 2"), "{text}");
        assert!(text.contains("aa_latency_micros_bucket{le=\"+Inf\"} 2"), "{text}");
        assert!(text.contains("aa_latency_micros_sum 1505"), "{text}");
        assert!(text.contains("aa_latency_micros_count 2"), "{text}");
    }

    #[test]
    fn labeled_histogram_places_label_before_le() {
        let r = Registry::new();
        r.histogram_labeled("aa_tier_micros", "tier", "algo2").record_micros(10);
        let text = prometheus_text(&r);
        assert!(
            text.contains("aa_tier_micros_bucket{tier=\"algo2\",le=\"10\"} 1"),
            "{text}"
        );
        assert!(text.contains("aa_tier_micros_sum{tier=\"algo2\"} 10"), "{text}");
    }

    #[test]
    fn prometheus_text_includes_federated_worker_series() {
        let r = Registry::new();
        r.counter("aa_fleet_dispatched_total").add(2);
        let h = crate::Histogram::default();
        h.record_micros(50);
        let mut snap = crate::FederatedSnapshot::default();
        snap.counters.push(("aa_serve_solved_total".into(), 9));
        snap.histograms.push(crate::FederatedHistogram {
            key: "aa_serve_tier_solve_micros{tier=\"algo2\"}".into(),
            buckets: h.bucket_counts(),
            count: h.count(),
            sum_micros: h.sum_micros(),
            max_micros: h.max_micros(),
        });
        r.merge_worker_snapshot("3", snap);
        let text = prometheus_text(&r);
        assert!(text.contains("aa_serve_solved_total{worker=\"3\"} 9"), "{text}");
        assert!(
            text.contains(
                "aa_serve_tier_solve_micros_bucket{tier=\"algo2\",worker=\"3\",le=\"50\"} 1"
            ),
            "{text}"
        );
        assert!(
            text.contains("aa_serve_tier_solve_micros_count{tier=\"algo2\",worker=\"fleet\"} 1"),
            "{text}"
        );
        let json = json_snapshot(&r);
        assert!(json.contains("\"aa_serve_solved_total{worker=\\\"3\\\"}\":9"), "{json}");
    }

    #[test]
    fn merged_chrome_trace_renders_one_lane_per_pid() {
        let lanes = vec![
            TraceLane {
                pid: 1,
                label: "front-end".into(),
                events: vec![LaneEvent {
                    name: "request".into(),
                    start_micros: 100,
                    duration_micros: 900,
                    thread_id: 1,
                    id: 7,
                    parent_id: 0,
                    trace_id: 42,
                }],
            },
            TraceLane {
                pid: 4242,
                label: "worker 0 pid 4242".into(),
                events: vec![LaneEvent {
                    name: "fleet_solve".into(),
                    start_micros: 300,
                    duration_micros: 500,
                    thread_id: 2,
                    id: (1u64 << 40) | 3,
                    parent_id: 7,
                    trace_id: 42,
                }],
            },
        ];
        let json = chrome_trace_merged(&lanes, 5);
        assert!(json.contains("\"ph\":\"M\""), "{json}");
        assert!(json.contains("\"name\":\"worker 0 pid 4242\""), "{json}");
        assert!(json.contains("\"pid\":4242"), "{json}");
        assert!(json.contains("\"parent\":7"), "{json}");
        assert!(json.contains("\"trace\":42"), "{json}");
        assert!(json.contains("\"dropped_events\":5"), "{json}");
        assert_eq!(json.matches('{').count(), json.matches('}').count(), "{json}");
    }

    #[test]
    fn json_snapshot_is_well_formed() {
        let r = Registry::new();
        r.counter("aa_a_total").inc();
        r.gauge("aa_b").set(1.25);
        r.histogram("aa_c_micros").record_micros(42);
        let json = json_snapshot(&r);
        assert!(json.contains("\"aa_a_total\":1"), "{json}");
        assert!(json.contains("\"aa_b\":1.25"), "{json}");
        assert!(json.contains("\"count\":1"), "{json}");
        assert!(json.contains("\"p99_micros\":42"), "{json}");
        // Braces balance — cheap structural sanity without a parser.
        let open = json.matches('{').count();
        let close = json.matches('}').count();
        assert_eq!(open, close, "{json}");
    }
}
