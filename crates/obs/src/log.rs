//! A single leveled logger for the workspace's human-facing
//! diagnostics (stderr only — stdout everywhere in the CLI is
//! machine-parsable and must stay that way).
//!
//! Two formats, selected once at startup (`aa … --log-format`):
//!
//! * `pretty` — the message text as-is for `info` (preserving the
//!   CLI's historical stderr contract, e.g. `serve: received=8 …`),
//!   prefixed with the level for `warn`/`error`/`debug`;
//! * `json` — one `{"level":…,"target":…,"msg":…}` object per line.

use std::fmt;
use std::io::Write as _;
use std::sync::atomic::{AtomicU8, Ordering};

/// Log severity, most severe first.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum LogLevel {
    /// Unrecoverable or user-visible failures.
    Error = 0,
    /// Degradations worth noticing (shed requests, expired deadlines).
    Warn = 1,
    /// Normal operational summaries.
    Info = 2,
    /// Extra detail for debugging.
    Debug = 3,
}

impl LogLevel {
    fn as_str(self) -> &'static str {
        match self {
            LogLevel::Error => "error",
            LogLevel::Warn => "warn",
            LogLevel::Info => "info",
            LogLevel::Debug => "debug",
        }
    }
}

/// Output format for log lines.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum LogFormat {
    /// Human-readable plain text (the default).
    #[default]
    Pretty,
    /// One JSON object per line.
    Json,
}

impl std::str::FromStr for LogFormat {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "pretty" => Ok(LogFormat::Pretty),
            "json" => Ok(LogFormat::Json),
            other => Err(format!("unknown log format {other:?} (pretty|json)")),
        }
    }
}

static MAX_LEVEL: AtomicU8 = AtomicU8::new(LogLevel::Info as u8);
static FORMAT: AtomicU8 = AtomicU8::new(0);

/// Configure the process-wide logger. May be called again to
/// reconfigure (last call wins); without any call the logger defaults
/// to `Info` / `Pretty`.
pub fn init_logger(level: LogLevel, format: LogFormat) {
    MAX_LEVEL.store(level as u8, Ordering::Relaxed);
    FORMAT.store(
        match format {
            LogFormat::Pretty => 0,
            LogFormat::Json => 1,
        },
        Ordering::Relaxed,
    );
}

/// Would a record at `level` be emitted?
#[must_use]
pub fn log_enabled(level: LogLevel) -> bool {
    (level as u8) <= MAX_LEVEL.load(Ordering::Relaxed)
}

/// Current output format.
#[must_use]
pub fn log_format() -> LogFormat {
    if FORMAT.load(Ordering::Relaxed) == 1 {
        LogFormat::Json
    } else {
        LogFormat::Pretty
    }
}

/// Emit one record. Prefer the [`crate::obs_info!`]-family macros.
pub fn log_record(level: LogLevel, target: &str, args: fmt::Arguments<'_>) {
    if !log_enabled(level) {
        return;
    }
    let stderr = std::io::stderr();
    let mut out = stderr.lock();
    let _ = match log_format() {
        LogFormat::Pretty => match level {
            LogLevel::Info => writeln!(out, "{args}"),
            other => writeln!(out, "{}: {args}", other.as_str()),
        },
        LogFormat::Json => writeln!(
            out,
            "{{\"level\":\"{}\",\"target\":\"{}\",\"msg\":{}}}",
            level.as_str(),
            target,
            escape_json(&args.to_string()),
        ),
    };
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Log at `info`: `obs_info!("serve", "received={n}")`.
#[macro_export]
macro_rules! obs_info {
    ($target:expr, $($arg:tt)*) => {
        $crate::log::log_record(
            $crate::log::LogLevel::Info, $target, format_args!($($arg)*),
        )
    };
}

/// Log at `warn`.
#[macro_export]
macro_rules! obs_warn {
    ($target:expr, $($arg:tt)*) => {
        $crate::log::log_record(
            $crate::log::LogLevel::Warn, $target, format_args!($($arg)*),
        )
    };
}

/// Log at `error`.
#[macro_export]
macro_rules! obs_error {
    ($target:expr, $($arg:tt)*) => {
        $crate::log::log_record(
            $crate::log::LogLevel::Error, $target, format_args!($($arg)*),
        )
    };
}

/// Log at `debug` (off by default).
#[macro_export]
macro_rules! obs_debug {
    ($target:expr, $($arg:tt)*) => {
        $crate::log::log_record(
            $crate::log::LogLevel::Debug, $target, format_args!($($arg)*),
        )
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_filtering_orders_correctly() {
        init_logger(LogLevel::Info, LogFormat::Pretty);
        assert!(log_enabled(LogLevel::Error));
        assert!(log_enabled(LogLevel::Warn));
        assert!(log_enabled(LogLevel::Info));
        assert!(!log_enabled(LogLevel::Debug));
        init_logger(LogLevel::Debug, LogFormat::Json);
        assert!(log_enabled(LogLevel::Debug));
        assert_eq!(log_format(), LogFormat::Json);
        // Restore defaults for sibling tests in this process.
        init_logger(LogLevel::Info, LogFormat::Pretty);
    }

    #[test]
    fn format_parses() {
        assert_eq!("pretty".parse::<LogFormat>().unwrap(), LogFormat::Pretty);
        assert_eq!("json".parse::<LogFormat>().unwrap(), LogFormat::Json);
        assert!("yaml".parse::<LogFormat>().is_err());
    }

    #[test]
    fn json_escaping_handles_quotes_and_newlines() {
        assert_eq!(escape_json("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }
}
