//! The metrics registry: named counters, gauges and fixed-bucket
//! log-linear histograms.
//!
//! Handles are cheap `Arc` clones around atomics; the **record path
//! never allocates and never takes the registry lock** — callers fetch
//! a handle once (allocating the registry entry) and then record
//! through it for the rest of the process. Quantiles (p50/p90/p99) are
//! derived from the fixed buckets at *export* time, so observing a
//! value into a histogram is a couple of relaxed atomic adds — cheap
//! enough for the solver hot path and allocation-free by construction,
//! which is what keeps the `arena_alloc` zero-allocation guarantee
//! intact with a live collector.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Number of log-linear bucket boundaries: `m·10^e` for `m ∈ 1..=9`,
/// `e ∈ 0..=8` — 1 µs up to 900 s, nine buckets per decade. Values
/// above the last boundary land in the overflow bucket.
pub const NUM_BOUNDARIES: usize = 81;

/// The `i`-th bucket boundary in microseconds: `(i % 9 + 1) · 10^(i / 9)`.
#[must_use]
pub fn bucket_boundary_micros(i: usize) -> u64 {
    debug_assert!(i < NUM_BOUNDARIES);
    (i as u64 % 9 + 1) * 10u64.pow(i as u32 / 9)
}

/// Index of the smallest boundary `≥ value` (le-semantics), or
/// `NUM_BOUNDARIES` for the overflow bucket. Pure integer math — no
/// search, no float, no allocation.
#[must_use]
pub fn bucket_index(value_micros: u64) -> usize {
    if value_micros <= 1 {
        return 0;
    }
    let d = value_micros.ilog10() as u64;
    let scale = 10u64.pow(d as u32);
    let m = value_micros / scale;
    let round_up = u64::from(value_micros > m * scale);
    let idx = (d * 9 + (m - 1) + round_up) as usize;
    idx.min(NUM_BOUNDARIES)
}

/// A monotonically increasing `u64` counter.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Increment by one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins `f64` gauge (stored as bits in an `AtomicU64`).
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Set the gauge.
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

#[derive(Debug)]
pub(crate) struct HistogramInner {
    buckets: [AtomicU64; NUM_BOUNDARIES + 1],
    count: AtomicU64,
    sum_micros: AtomicU64,
    max_micros: AtomicU64,
}

/// A fixed-bucket log-linear latency histogram over microseconds.
///
/// `record_*` is allocation-free: one bucket index computation plus
/// four relaxed atomic updates. `count`/`sum`/`max` are tracked
/// exactly; quantiles are bucket-resolved upper bounds capped at the
/// exact observed maximum (so `quantile(0.99) ≤ max` always holds, and
/// any quantile of a non-empty histogram is ≥ 1 µs).
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistogramInner>);

impl Default for Histogram {
    fn default() -> Self {
        Histogram(Arc::new(HistogramInner {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_micros: AtomicU64::new(0),
            max_micros: AtomicU64::new(0),
        }))
    }
}

impl Histogram {
    /// Record one observation, in microseconds.
    pub fn record_micros(&self, micros: u64) {
        let inner = &self.0;
        inner.buckets[bucket_index(micros)].fetch_add(1, Ordering::Relaxed);
        inner.count.fetch_add(1, Ordering::Relaxed);
        inner.sum_micros.fetch_add(micros, Ordering::Relaxed);
        inner.max_micros.fetch_max(micros, Ordering::Relaxed);
    }

    /// Record one observation from a [`Duration`].
    pub fn record_duration(&self, d: Duration) {
        self.record_micros(u64::try_from(d.as_micros()).unwrap_or(u64::MAX));
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations, in microseconds.
    #[must_use]
    pub fn sum_micros(&self) -> u64 {
        self.0.sum_micros.load(Ordering::Relaxed)
    }

    /// Largest observation, in microseconds (0 when empty).
    #[must_use]
    pub fn max_micros(&self) -> u64 {
        self.0.max_micros.load(Ordering::Relaxed)
    }

    /// Per-bucket (non-cumulative) counts, boundaries then overflow.
    #[must_use]
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.0
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Bucket-resolved `q`-quantile in microseconds: the boundary of the
    /// bucket holding the nearest-rank observation, capped at the exact
    /// observed maximum. Returns 0 for an empty histogram.
    #[must_use]
    pub fn quantile_micros(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let max = self.max_micros();
        #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let rank = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, bucket) in self.0.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                if i == NUM_BOUNDARIES {
                    return max;
                }
                return bucket_boundary_micros(i).min(max);
            }
        }
        max
    }
}

/// One registered metric.
#[derive(Clone, Debug)]
pub enum Metric {
    /// A [`Counter`].
    Counter(Counter),
    /// A [`Gauge`].
    Gauge(Gauge),
    /// A [`Histogram`].
    Histogram(Histogram),
}

#[derive(Clone, Debug)]
pub(crate) struct Entry {
    pub(crate) name: String,
    /// Optional single `key="value"` label pair.
    pub(crate) label: Option<(String, String)>,
    pub(crate) metric: Metric,
}

impl Entry {
    /// `name` or `name{key="value"}` — the stable export key.
    pub(crate) fn key(&self) -> String {
        match &self.label {
            None => self.name.clone(),
            Some((k, v)) => format!("{}{{{}=\"{}\"}}", self.name, k, v),
        }
    }
}

/// A registry of named metrics.
///
/// Instantiable (tests and the serve loop pass their own so process
/// state never leaks between runs); [`crate::global`] is the shared
/// process-wide instance the solver pipeline records into.
#[derive(Debug, Default)]
pub struct Registry {
    pub(crate) entries: Mutex<Vec<Entry>>,
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Registry::default()
    }

    fn get_or_create(&self, name: &str, label: Option<(&str, &str)>, make: fn() -> Metric) -> Metric {
        let mut entries = self.entries.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(e) = entries.iter().find(|e| {
            e.name == name
                && e.label.as_ref().map(|(k, v)| (k.as_str(), v.as_str())) == label
        }) {
            return e.metric.clone();
        }
        let metric = make();
        entries.push(Entry {
            name: name.to_string(),
            label: label.map(|(k, v)| (k.to_string(), v.to_string())),
            metric: metric.clone(),
        });
        metric
    }

    /// Get or create the counter `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Counter {
        match self.get_or_create(name, None, || Metric::Counter(Counter::default())) {
            Metric::Counter(c) => c,
            other => panic!("metric {name:?} already registered as {other:?}"),
        }
    }

    /// Get or create the counter `name{key="value"}`.
    ///
    /// # Panics
    /// If the name/label pair is already registered as a different kind.
    pub fn counter_labeled(&self, name: &str, key: &str, value: &str) -> Counter {
        match self.get_or_create(name, Some((key, value)), || Metric::Counter(Counter::default())) {
            Metric::Counter(c) => c,
            other => panic!("metric {name:?} already registered as {other:?}"),
        }
    }

    /// Get or create the gauge `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Gauge {
        match self.get_or_create(name, None, || Metric::Gauge(Gauge::default())) {
            Metric::Gauge(g) => g,
            other => panic!("metric {name:?} already registered as {other:?}"),
        }
    }

    /// Get or create the gauge `name{key="value"}`.
    ///
    /// # Panics
    /// If the name/label pair is already registered as a different kind.
    pub fn gauge_labeled(&self, name: &str, key: &str, value: &str) -> Gauge {
        match self.get_or_create(name, Some((key, value)), || Metric::Gauge(Gauge::default())) {
            Metric::Gauge(g) => g,
            other => panic!("metric {name:?} already registered as {other:?}"),
        }
    }

    /// Get or create the histogram `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str) -> Histogram {
        match self.get_or_create(name, None, || Metric::Histogram(Histogram::default())) {
            Metric::Histogram(h) => h,
            other => panic!("metric {name:?} already registered as {other:?}"),
        }
    }

    /// Get or create the histogram `name{key="value"}`.
    ///
    /// # Panics
    /// If the name/label pair is already registered as a different kind.
    pub fn histogram_labeled(&self, name: &str, key: &str, value: &str) -> Histogram {
        match self.get_or_create(name, Some((key, value)), || {
            Metric::Histogram(Histogram::default())
        }) {
            Metric::Histogram(h) => h,
            other => panic!("metric {name:?} already registered as {other:?}"),
        }
    }

    /// Snapshot of every registered entry, sorted by export key —
    /// deterministic regardless of registration order.
    #[must_use]
    pub fn snapshot(&self) -> Vec<(String, Metric)> {
        let entries = self.entries.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut out: Vec<(String, Metric)> =
            entries.iter().map(|e| (e.key(), e.metric.clone())).collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_round_trip() {
        let r = Registry::new();
        let c = r.counter("aa_test_total");
        c.inc();
        c.add(4);
        assert_eq!(r.counter("aa_test_total").get(), 5, "same handle by name");
        let g = r.gauge("aa_test_gauge");
        g.set(2.5);
        assert_eq!(r.gauge("aa_test_gauge").get(), 2.5);
    }

    #[test]
    fn labeled_counters_are_distinct() {
        let r = Registry::new();
        r.counter_labeled("aa_tier_total", "tier", "algo2").add(3);
        r.counter_labeled("aa_tier_total", "tier", "uu").add(7);
        assert_eq!(r.counter_labeled("aa_tier_total", "tier", "algo2").get(), 3);
        assert_eq!(r.counter_labeled("aa_tier_total", "tier", "uu").get(), 7);
    }

    #[test]
    fn labeled_gauges_are_distinct() {
        let r = Registry::new();
        r.gauge_labeled("aa_shard_queue_depth", "shard", "0").set(3.0);
        r.gauge_labeled("aa_shard_queue_depth", "shard", "1").set(8.0);
        assert_eq!(r.gauge_labeled("aa_shard_queue_depth", "shard", "0").get(), 3.0);
        assert_eq!(r.gauge_labeled("aa_shard_queue_depth", "shard", "1").get(), 8.0);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.counter("aa_kind");
        r.gauge("aa_kind");
    }
}
