//! The metrics registry: named counters, gauges and fixed-bucket
//! log-linear histograms.
//!
//! Handles are cheap `Arc` clones around atomics; the **record path
//! never allocates and never takes the registry lock** — callers fetch
//! a handle once (allocating the registry entry) and then record
//! through it for the rest of the process. Quantiles (p50/p90/p99) are
//! derived from the fixed buckets at *export* time, so observing a
//! value into a histogram is a couple of relaxed atomic adds — cheap
//! enough for the solver hot path and allocation-free by construction,
//! which is what keeps the `arena_alloc` zero-allocation guarantee
//! intact with a live collector.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Number of log-linear bucket boundaries: `m·10^e` for `m ∈ 1..=9`,
/// `e ∈ 0..=8` — 1 µs up to 900 s, nine buckets per decade. Values
/// above the last boundary land in the overflow bucket.
pub const NUM_BOUNDARIES: usize = 81;

/// The `i`-th bucket boundary in microseconds: `(i % 9 + 1) · 10^(i / 9)`.
#[must_use]
pub fn bucket_boundary_micros(i: usize) -> u64 {
    debug_assert!(i < NUM_BOUNDARIES);
    (i as u64 % 9 + 1) * 10u64.pow(i as u32 / 9)
}

/// Index of the smallest boundary `≥ value` (le-semantics), or
/// `NUM_BOUNDARIES` for the overflow bucket. Pure integer math — no
/// search, no float, no allocation.
#[must_use]
pub fn bucket_index(value_micros: u64) -> usize {
    if value_micros <= 1 {
        return 0;
    }
    let d = value_micros.ilog10() as u64;
    let scale = 10u64.pow(d as u32);
    let m = value_micros / scale;
    let round_up = u64::from(value_micros > m * scale);
    let idx = (d * 9 + (m - 1) + round_up) as usize;
    idx.min(NUM_BOUNDARIES)
}

/// A monotonically increasing `u64` counter.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Increment by one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins `f64` gauge (stored as bits in an `AtomicU64`).
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Set the gauge.
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

#[derive(Debug)]
pub(crate) struct HistogramInner {
    buckets: [AtomicU64; NUM_BOUNDARIES + 1],
    count: AtomicU64,
    sum_micros: AtomicU64,
    max_micros: AtomicU64,
}

/// A fixed-bucket log-linear latency histogram over microseconds.
///
/// `record_*` is allocation-free: one bucket index computation plus
/// four relaxed atomic updates. `count`/`sum`/`max` are tracked
/// exactly; quantiles are bucket-resolved upper bounds capped at the
/// exact observed maximum (so `quantile(0.99) ≤ max` always holds, and
/// any quantile of a non-empty histogram is ≥ 1 µs).
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistogramInner>);

impl Default for Histogram {
    fn default() -> Self {
        Histogram(Arc::new(HistogramInner {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_micros: AtomicU64::new(0),
            max_micros: AtomicU64::new(0),
        }))
    }
}

impl Histogram {
    /// Record one observation, in microseconds.
    pub fn record_micros(&self, micros: u64) {
        let inner = &self.0;
        inner.buckets[bucket_index(micros)].fetch_add(1, Ordering::Relaxed);
        inner.count.fetch_add(1, Ordering::Relaxed);
        inner.sum_micros.fetch_add(micros, Ordering::Relaxed);
        inner.max_micros.fetch_max(micros, Ordering::Relaxed);
    }

    /// Record one observation from a [`Duration`].
    pub fn record_duration(&self, d: Duration) {
        self.record_micros(u64::try_from(d.as_micros()).unwrap_or(u64::MAX));
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations, in microseconds.
    #[must_use]
    pub fn sum_micros(&self) -> u64 {
        self.0.sum_micros.load(Ordering::Relaxed)
    }

    /// Largest observation, in microseconds (0 when empty).
    #[must_use]
    pub fn max_micros(&self) -> u64 {
        self.0.max_micros.load(Ordering::Relaxed)
    }

    /// Per-bucket (non-cumulative) counts, boundaries then overflow.
    #[must_use]
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.0
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Merge `other` into `self`: bucket-wise add (the boundaries are
    /// fixed and identical for every histogram), plus count/sum adds
    /// and a max fetch-max. This is exactly what recording `other`'s
    /// samples into `self` would have produced at bucket resolution, so
    /// merged quantiles equal single-histogram quantiles — the property
    /// the federation proptest pins.
    pub fn merge(&self, other: &Histogram) {
        for (mine, theirs) in self.0.buckets.iter().zip(other.0.buckets.iter()) {
            mine.fetch_add(theirs.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        self.0.count.fetch_add(other.count(), Ordering::Relaxed);
        self.0.sum_micros.fetch_add(other.sum_micros(), Ordering::Relaxed);
        self.0.max_micros.fetch_max(other.max_micros(), Ordering::Relaxed);
    }

    /// Rebuild a histogram from shipped parts (a worker's wire
    /// snapshot). Returns `None` when `buckets` does not have exactly
    /// [`NUM_BOUNDARIES`]` + 1` entries — the boundaries are a protocol
    /// constant, so a length mismatch means version skew and the
    /// snapshot must be discarded rather than misfiled.
    #[must_use]
    pub fn from_parts(buckets: &[u64], count: u64, sum_micros: u64, max_micros: u64) -> Option<Histogram> {
        if buckets.len() != NUM_BOUNDARIES + 1 {
            return None;
        }
        let h = Histogram::default();
        for (slot, &v) in h.0.buckets.iter().zip(buckets.iter()) {
            slot.store(v, Ordering::Relaxed);
        }
        h.0.count.store(count, Ordering::Relaxed);
        h.0.sum_micros.store(sum_micros, Ordering::Relaxed);
        h.0.max_micros.store(max_micros, Ordering::Relaxed);
        Some(h)
    }

    /// Bucket-resolved `q`-quantile in microseconds: the boundary of the
    /// bucket holding the nearest-rank observation, capped at the exact
    /// observed maximum. Returns 0 for an empty histogram.
    #[must_use]
    pub fn quantile_micros(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let max = self.max_micros();
        #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let rank = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, bucket) in self.0.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                if i == NUM_BOUNDARIES {
                    return max;
                }
                return bucket_boundary_micros(i).min(max);
            }
        }
        max
    }
}

/// One registered metric.
#[derive(Clone, Debug)]
pub enum Metric {
    /// A [`Counter`].
    Counter(Counter),
    /// A [`Gauge`].
    Gauge(Gauge),
    /// A [`Histogram`].
    Histogram(Histogram),
}

#[derive(Clone, Debug)]
pub(crate) struct Entry {
    pub(crate) name: String,
    /// Optional single `key="value"` label pair.
    pub(crate) label: Option<(String, String)>,
    pub(crate) metric: Metric,
}

impl Entry {
    /// `name` or `name{key="value"}` — the stable export key.
    pub(crate) fn key(&self) -> String {
        match &self.label {
            None => self.name.clone(),
            Some((k, v)) => format!("{}{{{}=\"{}\"}}", self.name, k, v),
        }
    }
}

/// A worker registry snapshot as shipped over the fleet wire: flat
/// `(export key, value)` lists plus raw histogram parts. Full snapshots
/// — not deltas — so a merge is idempotent and a worker restart (which
/// resets its counters) simply replaces the previous incarnation's
/// contribution.
#[derive(Clone, Debug, Default)]
pub struct FederatedSnapshot {
    /// Counter export keys and cumulative values.
    pub counters: Vec<(String, u64)>,
    /// Gauge export keys and last values.
    pub gauges: Vec<(String, f64)>,
    /// Histogram export keys and raw parts.
    pub histograms: Vec<FederatedHistogram>,
}

/// One histogram inside a [`FederatedSnapshot`].
#[derive(Clone, Debug)]
pub struct FederatedHistogram {
    /// The export key (`name` or `name{k="v"}`).
    pub key: String,
    /// Per-bucket counts, [`NUM_BOUNDARIES`]` + 1` entries.
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observations, µs.
    pub sum_micros: u64,
    /// Largest observation, µs.
    pub max_micros: u64,
}

/// A registry of named metrics.
///
/// Instantiable (tests and the serve loop pass their own so process
/// state never leaks between runs); [`crate::global`] is the shared
/// process-wide instance the solver pipeline records into.
///
/// A fleet front-end additionally *federates*: worker processes ship
/// [`FederatedSnapshot`]s of their own registries, merged in via
/// [`Registry::merge_worker_snapshot`] and re-exported (with a
/// `worker=` label, plus a `worker="fleet"` bucket-wise aggregate for
/// histograms) by [`Registry::snapshot_federated`].
#[derive(Debug, Default)]
pub struct Registry {
    pub(crate) entries: Mutex<Vec<Entry>>,
    federated: Mutex<Vec<(String, FederatedSnapshot)>>,
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Registry::default()
    }

    fn get_or_create(&self, name: &str, label: Option<(&str, &str)>, make: fn() -> Metric) -> Metric {
        let mut entries = self.entries.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(e) = entries.iter().find(|e| {
            e.name == name
                && e.label.as_ref().map(|(k, v)| (k.as_str(), v.as_str())) == label
        }) {
            return e.metric.clone();
        }
        let metric = make();
        entries.push(Entry {
            name: name.to_string(),
            label: label.map(|(k, v)| (k.to_string(), v.to_string())),
            metric: metric.clone(),
        });
        metric
    }

    /// Get or create the counter `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Counter {
        match self.get_or_create(name, None, || Metric::Counter(Counter::default())) {
            Metric::Counter(c) => c,
            other => panic!("metric {name:?} already registered as {other:?}"),
        }
    }

    /// Get or create the counter `name{key="value"}`.
    ///
    /// # Panics
    /// If the name/label pair is already registered as a different kind.
    pub fn counter_labeled(&self, name: &str, key: &str, value: &str) -> Counter {
        match self.get_or_create(name, Some((key, value)), || Metric::Counter(Counter::default())) {
            Metric::Counter(c) => c,
            other => panic!("metric {name:?} already registered as {other:?}"),
        }
    }

    /// Get or create the gauge `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Gauge {
        match self.get_or_create(name, None, || Metric::Gauge(Gauge::default())) {
            Metric::Gauge(g) => g,
            other => panic!("metric {name:?} already registered as {other:?}"),
        }
    }

    /// Get or create the gauge `name{key="value"}`.
    ///
    /// # Panics
    /// If the name/label pair is already registered as a different kind.
    pub fn gauge_labeled(&self, name: &str, key: &str, value: &str) -> Gauge {
        match self.get_or_create(name, Some((key, value)), || Metric::Gauge(Gauge::default())) {
            Metric::Gauge(g) => g,
            other => panic!("metric {name:?} already registered as {other:?}"),
        }
    }

    /// Get or create the histogram `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str) -> Histogram {
        match self.get_or_create(name, None, || Metric::Histogram(Histogram::default())) {
            Metric::Histogram(h) => h,
            other => panic!("metric {name:?} already registered as {other:?}"),
        }
    }

    /// Get or create the histogram `name{key="value"}`.
    ///
    /// # Panics
    /// If the name/label pair is already registered as a different kind.
    pub fn histogram_labeled(&self, name: &str, key: &str, value: &str) -> Histogram {
        match self.get_or_create(name, Some((key, value)), || {
            Metric::Histogram(Histogram::default())
        }) {
            Metric::Histogram(h) => h,
            other => panic!("metric {name:?} already registered as {other:?}"),
        }
    }

    /// Snapshot of every registered entry, sorted by export key —
    /// deterministic regardless of registration order. Local entries
    /// only; see [`Registry::snapshot_federated`] for the fleet view.
    #[must_use]
    pub fn snapshot(&self) -> Vec<(String, Metric)> {
        let entries = self.entries.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut out: Vec<(String, Metric)> =
            entries.iter().map(|e| (e.key(), e.metric.clone())).collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Capture the local entries as a [`FederatedSnapshot`] — what a
    /// fleet worker ships to its front-end.
    #[must_use]
    pub fn to_federated(&self) -> FederatedSnapshot {
        let mut snap = FederatedSnapshot::default();
        for (key, metric) in self.snapshot() {
            match metric {
                Metric::Counter(c) => snap.counters.push((key, c.get())),
                Metric::Gauge(g) => snap.gauges.push((key, g.get())),
                Metric::Histogram(h) => snap.histograms.push(FederatedHistogram {
                    key,
                    buckets: h.bucket_counts(),
                    count: h.count(),
                    sum_micros: h.sum_micros(),
                    max_micros: h.max_micros(),
                }),
            }
        }
        snap
    }

    /// Merge (replace-or-insert) worker `worker`'s latest snapshot.
    /// Snapshots are full, so the newest one entirely supersedes the
    /// previous — stale series from a dead incarnation cannot linger.
    pub fn merge_worker_snapshot(&self, worker: &str, snap: FederatedSnapshot) {
        let mut fed = self.federated.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        match fed.binary_search_by(|(w, _)| w.as_str().cmp(worker)) {
            Ok(i) => fed[i].1 = snap,
            Err(i) => fed.insert(i, (worker.to_string(), snap)),
        }
    }

    /// Forget worker `worker`'s federated series entirely — called when
    /// a worker is retired so `/metrics` stops re-exporting it as live.
    pub fn drop_worker(&self, worker: &str) {
        let mut fed = self.federated.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        fed.retain(|(w, _)| w != worker);
    }

    /// The fleet-complete snapshot: local entries, plus every federated
    /// worker series re-keyed with a `worker="…"` label, plus one
    /// `worker="fleet"` bucket-wise aggregate per federated histogram
    /// name (merged counts equal the sum of per-worker counts). Sorted
    /// by export key. Identical to [`Registry::snapshot`] when nothing
    /// has federated.
    #[must_use]
    pub fn snapshot_federated(&self) -> Vec<(String, Metric)> {
        let mut out = self.snapshot();
        let fed = self.federated.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        // Aggregate histograms across workers by their original key.
        let mut merged: Vec<(String, Histogram)> = Vec::new();
        for (worker, snap) in fed.iter() {
            for (key, v) in &snap.counters {
                let c = Counter::default();
                c.add(*v);
                out.push((key_with_worker(key, worker), Metric::Counter(c)));
            }
            for (key, v) in &snap.gauges {
                let g = Gauge::default();
                g.set(*v);
                out.push((key_with_worker(key, worker), Metric::Gauge(g)));
            }
            for fh in &snap.histograms {
                let Some(h) =
                    Histogram::from_parts(&fh.buckets, fh.count, fh.sum_micros, fh.max_micros)
                else {
                    continue;
                };
                match merged.iter().find(|(k, _)| k == &fh.key) {
                    Some((_, agg)) => agg.merge(&h),
                    None => {
                        let agg = Histogram::default();
                        agg.merge(&h);
                        merged.push((fh.key.clone(), agg));
                    }
                }
                out.push((key_with_worker(&fh.key, worker), Metric::Histogram(h)));
            }
        }
        for (key, agg) in merged {
            out.push((key_with_worker(&key, "fleet"), Metric::Histogram(agg)));
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }
}

/// Splice a `worker="…"` label into an export key: `name` →
/// `name{worker="w"}`, `name{k="v"}` → `name{k="v",worker="w"}`.
fn key_with_worker(key: &str, worker: &str) -> String {
    match key.strip_suffix('}') {
        Some(open) => format!("{open},worker=\"{worker}\"}}"),
        None => format!("{key}{{worker=\"{worker}\"}}"),
    }
}

/// A tiny SLO tracker: classifies each end-to-end completion as good
/// or breaching (latency over target, or a non-ok outcome), exports
/// `aa_slo_good_total` / `aa_slo_breach_total` / `aa_slo_burn_rate` /
/// `aa_slo_target_p99_micros`, and derives the burn rate as
/// breach-fraction over the 1 % error budget implied by a p99 target
/// (burn 1.0 = exactly consuming budget; > 1.0 = burning it down).
#[derive(Clone, Debug)]
pub struct SloTracker {
    target_micros: u64,
    good: Counter,
    breach: Counter,
    burn: Gauge,
}

/// Error budget implied by a p99 target: 1 % of requests may breach.
const SLO_ERROR_BUDGET: f64 = 0.01;

impl SloTracker {
    /// Register the `aa_slo_*` series in `registry` with a latency
    /// target of `target_micros`.
    #[must_use]
    pub fn register(registry: &Registry, target_micros: u64) -> SloTracker {
        #[allow(clippy::cast_precision_loss)]
        registry.gauge("aa_slo_target_p99_micros").set(target_micros as f64);
        SloTracker {
            target_micros,
            good: registry.counter("aa_slo_good_total"),
            breach: registry.counter("aa_slo_breach_total"),
            burn: registry.gauge("aa_slo_burn_rate"),
        }
    }

    /// The latency target, µs.
    #[must_use]
    pub fn target_micros(&self) -> u64 {
        self.target_micros
    }

    /// Record one completed request: `ok` outcomes under target are
    /// good, everything else breaches. Refreshes the burn-rate gauge.
    pub fn observe(&self, latency_micros: u64, ok: bool) {
        if ok && latency_micros <= self.target_micros {
            self.good.inc();
        } else {
            self.breach.inc();
        }
        self.burn.set(self.burn_rate());
    }

    /// Current burn rate: breach fraction ÷ error budget (0.0 when
    /// nothing has been observed).
    #[must_use]
    pub fn burn_rate(&self) -> f64 {
        let good = self.good.get();
        let breach = self.breach.get();
        let total = good + breach;
        if total == 0 {
            return 0.0;
        }
        #[allow(clippy::cast_precision_loss)]
        let fraction = breach as f64 / total as f64;
        fraction / SLO_ERROR_BUDGET
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_round_trip() {
        let r = Registry::new();
        let c = r.counter("aa_test_total");
        c.inc();
        c.add(4);
        assert_eq!(r.counter("aa_test_total").get(), 5, "same handle by name");
        let g = r.gauge("aa_test_gauge");
        g.set(2.5);
        assert_eq!(r.gauge("aa_test_gauge").get(), 2.5);
    }

    #[test]
    fn labeled_counters_are_distinct() {
        let r = Registry::new();
        r.counter_labeled("aa_tier_total", "tier", "algo2").add(3);
        r.counter_labeled("aa_tier_total", "tier", "uu").add(7);
        assert_eq!(r.counter_labeled("aa_tier_total", "tier", "algo2").get(), 3);
        assert_eq!(r.counter_labeled("aa_tier_total", "tier", "uu").get(), 7);
    }

    #[test]
    fn labeled_gauges_are_distinct() {
        let r = Registry::new();
        r.gauge_labeled("aa_shard_queue_depth", "shard", "0").set(3.0);
        r.gauge_labeled("aa_shard_queue_depth", "shard", "1").set(8.0);
        assert_eq!(r.gauge_labeled("aa_shard_queue_depth", "shard", "0").get(), 3.0);
        assert_eq!(r.gauge_labeled("aa_shard_queue_depth", "shard", "1").get(), 8.0);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.counter("aa_kind");
        r.gauge("aa_kind");
    }

    #[test]
    fn histogram_merge_matches_recording_everything_once() {
        let a = Histogram::default();
        let b = Histogram::default();
        let combined = Histogram::default();
        for v in [1u64, 5, 90, 1_500] {
            a.record_micros(v);
            combined.record_micros(v);
        }
        for v in [2u64, 900, 2_000_000] {
            b.record_micros(v);
            combined.record_micros(v);
        }
        let merged = Histogram::default();
        merged.merge(&a);
        merged.merge(&b);
        assert_eq!(merged.count(), combined.count());
        assert_eq!(merged.sum_micros(), combined.sum_micros());
        assert_eq!(merged.max_micros(), combined.max_micros());
        assert_eq!(merged.bucket_counts(), combined.bucket_counts());
        for q in [0.5, 0.9, 0.99] {
            assert_eq!(merged.quantile_micros(q), combined.quantile_micros(q));
        }
    }

    #[test]
    fn from_parts_rejects_wrong_bucket_count() {
        assert!(Histogram::from_parts(&[0; NUM_BOUNDARIES + 1], 0, 0, 0).is_some());
        assert!(Histogram::from_parts(&[0; NUM_BOUNDARIES], 0, 0, 0).is_none());
    }

    #[test]
    fn federation_re_exports_worker_series_and_aggregates() {
        let r = Registry::new();
        r.counter("aa_local_total").inc();
        let mut snap0 = FederatedSnapshot::default();
        snap0.counters.push(("aa_worker_solves_total".into(), 3));
        snap0.gauges.push(("aa_worker_depth".into(), 2.0));
        let h0 = Histogram::default();
        h0.record_micros(10);
        h0.record_micros(20);
        snap0.histograms.push(FederatedHistogram {
            key: "aa_worker_solve_micros".into(),
            buckets: h0.bucket_counts(),
            count: h0.count(),
            sum_micros: h0.sum_micros(),
            max_micros: h0.max_micros(),
        });
        let mut snap1 = FederatedSnapshot::default();
        snap1.counters.push(("aa_worker_solves_total".into(), 5));
        let h1 = Histogram::default();
        h1.record_micros(700);
        snap1.histograms.push(FederatedHistogram {
            key: "aa_worker_solve_micros".into(),
            buckets: h1.bucket_counts(),
            count: h1.count(),
            sum_micros: h1.sum_micros(),
            max_micros: h1.max_micros(),
        });
        r.merge_worker_snapshot("0", snap0.clone());
        r.merge_worker_snapshot("1", snap1);
        let keys: Vec<String> = r.snapshot_federated().iter().map(|(k, _)| k.clone()).collect();
        assert!(keys.contains(&"aa_local_total".to_string()), "{keys:?}");
        assert!(keys.contains(&"aa_worker_solves_total{worker=\"0\"}".to_string()), "{keys:?}");
        assert!(keys.contains(&"aa_worker_solves_total{worker=\"1\"}".to_string()), "{keys:?}");
        assert!(keys.contains(&"aa_worker_depth{worker=\"0\"}".to_string()), "{keys:?}");
        let fleet = r
            .snapshot_federated()
            .into_iter()
            .find(|(k, _)| k == "aa_worker_solve_micros{worker=\"fleet\"}")
            .expect("fleet aggregate exists");
        match fleet.1 {
            Metric::Histogram(h) => {
                assert_eq!(h.count(), 3, "merged count = sum of per-worker counts");
                assert_eq!(h.max_micros(), 700);
            }
            other => panic!("aggregate is a histogram, got {other:?}"),
        }
        // Re-merging worker 0 replaces (full snapshots, not deltas).
        r.merge_worker_snapshot("0", snap0);
        let count = r
            .snapshot_federated()
            .iter()
            .filter(|(k, _)| k == "aa_worker_solves_total{worker=\"0\"}")
            .count();
        assert_eq!(count, 1);
        // Retirement drops the worker's series entirely.
        r.drop_worker("0");
        let keys: Vec<String> = r.snapshot_federated().iter().map(|(k, _)| k.clone()).collect();
        assert!(!keys.iter().any(|k| k.contains("worker=\"0\"")), "{keys:?}");
        assert!(keys.contains(&"aa_worker_solves_total{worker=\"1\"}".to_string()), "{keys:?}");
    }

    #[test]
    fn key_with_worker_splices_into_existing_labels() {
        assert_eq!(key_with_worker("aa_x", "2"), "aa_x{worker=\"2\"}");
        assert_eq!(
            key_with_worker("aa_x{tier=\"algo2\"}", "2"),
            "aa_x{tier=\"algo2\",worker=\"2\"}"
        );
    }

    #[test]
    fn slo_tracker_burn_rate_tracks_breach_fraction() {
        let r = Registry::new();
        let slo = SloTracker::register(&r, 1_000);
        assert_eq!(slo.burn_rate(), 0.0);
        for _ in 0..99 {
            slo.observe(500, true);
        }
        slo.observe(2_000, true); // over target → breach
        assert!((slo.burn_rate() - 1.0).abs() < 1e-9, "1/100 breaches = burn 1.0");
        assert_eq!(r.counter("aa_slo_good_total").get(), 99);
        assert_eq!(r.counter("aa_slo_breach_total").get(), 1);
        assert!((r.gauge("aa_slo_burn_rate").get() - 1.0).abs() < 1e-9);
        assert_eq!(r.gauge("aa_slo_target_p99_micros").get(), 1_000.0);
        slo.observe(100, false); // fast but failed → still a breach
        assert_eq!(r.counter("aa_slo_breach_total").get(), 2);
    }
}
