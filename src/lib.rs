#![warn(missing_docs)]

//! # aa — utility-maximizing thread assignment and resource allocation
//!
//! Facade crate for the workspace reproducing *"Utility Maximizing Thread
//! Assignment and Resource Allocation"* (Lai, Fan, Zhang, Liu — IPDPS
//! 2016). Re-exports the public API of every member crate under one roof:
//!
//! * [`utility`] — concave utility-function substrate;
//! * [`allocator`] — single-pool resource allocation (Fox greedy, Galil
//!   bisection);
//! * [`core`] — the AA problem, Algorithms 1 & 2, heuristics, exact
//!   solvers;
//! * [`workloads`] — the paper's Section VII synthetic workload generator;
//! * [`sim`] — trace-driven multicore-cache and cloud-hosting simulators;
//! * [`obs`] — observability substrate: spans, metrics registry,
//!   Prometheus/JSON/Chrome-trace exporters, leveled logging.
//!
//! ## Quickstart
//!
//! ```
//! use aa::core::{Problem, solver::{Solver, Algo2}};
//! use aa::utility::{Power, LogUtility};
//! use std::sync::Arc;
//!
//! // Two servers with 10 units of resource each, four threads.
//! let problem = Problem::builder(2, 10.0)
//!     .thread(Arc::new(Power::new(4.0, 0.5, 10.0)))
//!     .thread(Arc::new(Power::new(1.0, 0.9, 10.0)))
//!     .thread(Arc::new(LogUtility::new(3.0, 1.0, 10.0)))
//!     .thread(Arc::new(LogUtility::new(0.5, 2.0, 10.0)))
//!     .build()
//!     .unwrap();
//!
//! // Algorithm 2: 0.828-approximation in O(n (log mC)^2).
//! let solution = Algo2::default().solve(&problem);
//! let total = solution.total_utility(&problem);
//! assert!(total > 0.0);
//!
//! // Never worse than 82.8% of the super-optimal upper bound.
//! let bound = aa::core::superopt::super_optimal(&problem).utility;
//! assert!(total >= 0.828 * bound - 1e-9);
//! ```

pub use aa_allocator as allocator;
pub use aa_core as core;
pub use aa_obs as obs;
pub use aa_sim as sim;
pub use aa_utility as utility;
pub use aa_workloads as workloads;
