//! Theorem IV.1 round-trips: PARTITION instances decided through the AA
//! reduction (E11 in DESIGN.md).

use aa::core::reduction::{reduce_partition, solve_partition, ReductionError};
use aa::core::solver::{Algo2, Solver};
use aa::core::ALPHA;

#[test]
fn classic_solvable_instances() {
    let cases: Vec<Vec<f64>> = vec![
        vec![1.0, 1.0],
        vec![2.0, 1.0, 1.0],
        vec![3.0, 1.0, 1.0, 2.0, 2.0, 1.0],
        vec![4.0, 5.0, 6.0, 7.0, 8.0], // 15 + 15: {7,8} vs {4,5,6}
        vec![1.5, 2.5, 2.0, 2.0],      // 4 vs 4
    ];
    for numbers in cases {
        let (s1, s2) = solve_partition(&numbers)
            .unwrap()
            .unwrap_or_else(|| panic!("no partition found for {numbers:?}"));
        let sum1: f64 = s1.iter().map(|&i| numbers[i]).sum();
        let sum2: f64 = s2.iter().map(|&i| numbers[i]).sum();
        assert!((sum1 - sum2).abs() < 1e-6, "{numbers:?}: {sum1} vs {sum2}");
        let mut all: Vec<usize> = s1.iter().chain(&s2).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..numbers.len()).collect::<Vec<_>>());
    }
}

#[test]
fn classic_unsolvable_instances() {
    let cases: Vec<Vec<f64>> = vec![
        vec![2.0, 2.0, 3.0],       // total 7
        vec![1.0, 2.0, 4.0, 5.1],  // irrational-ish split
        vec![3.0, 3.0, 3.0],       // total 9
    ];
    for numbers in cases {
        assert!(
            solve_partition(&numbers).unwrap().is_none(),
            "{numbers:?} should have no partition"
        );
    }
}

#[test]
fn reduction_utility_identities() {
    // On a solvable instance, OPT = Σc; the approximation is ≥ α·Σc.
    let numbers = [3.0, 1.0, 2.0, 2.0];
    let red = reduce_partition(&numbers).unwrap();
    let approx = Algo2.solve(&red.problem).total_utility(&red.problem);
    assert!(approx >= ALPHA * red.target - 1e-9);
    assert!(approx <= red.target + 1e-9);
}

#[test]
fn error_paths() {
    assert_eq!(
        reduce_partition(&[1.0]).unwrap_err(),
        ReductionError::TooFewNumbers
    );
    assert!(matches!(
        reduce_partition(&[0.0, 1.0]).unwrap_err(),
        ReductionError::BadNumber(_)
    ));
    assert!(matches!(
        reduce_partition(&[9.0, 1.0, 1.0]).unwrap_err(),
        ReductionError::NumberExceedsHalfSum(_)
    ));
}

#[test]
fn near_miss_instances_are_rejected() {
    // Total 10 but the best split is 5.1 / 4.9 — must be detected as
    // unsolvable, exercising the exactness of the threshold.
    let numbers = [4.9, 2.0, 1.6, 1.5];
    assert!(solve_partition(&numbers).unwrap().is_none());
}
