//! Cross-crate integration: the full pipeline from workload generation
//! through every solver, on the paper's experiment dimensions.

use aa::core::solver::{Algo1, Algo2, BruteForce, Rr, Ru, Solver, Ur, Uu};
use aa::core::{superopt, ALPHA};
use aa::workloads::{Distribution, InstanceSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

const DISTS: [Distribution; 4] = [
    Distribution::Uniform,
    Distribution::Normal { mean: 1.0, std: 1.0 },
    Distribution::PowerLaw { alpha: 2.0 },
    Distribution::Discrete { gamma: 0.85, theta: 5.0 },
];

#[test]
fn paper_dimensions_all_solvers_feasible() {
    // m = 8, C = 1000 (the paper's setup), β = 5.
    for dist in DISTS {
        let spec = InstanceSpec::paper(dist, 5);
        let mut rng = StdRng::seed_from_u64(11);
        let p = spec.generate(&mut rng).unwrap();
        let solvers: Vec<Box<dyn Solver>> = vec![
            Box::new(Algo1),
            Box::new(Algo2),
            Box::new(Uu),
            Box::new(Ur),
            Box::new(Ru),
            Box::new(Rr),
        ];
        let bound = superopt::super_optimal(&p).utility;
        for s in solvers {
            let a = s.solve(&p);
            a.validate(&p)
                .unwrap_or_else(|e| panic!("{} on {}: {e}", s.name(), dist.name()));
            assert!(
                a.total_utility(&p) <= bound + 1e-6 * bound,
                "{} exceeded the bound on {}",
                s.name(),
                dist.name()
            );
        }
    }
}

#[test]
fn approximation_guarantee_holds_across_distributions() {
    for dist in DISTS {
        for beta in [1, 5, 15] {
            let spec = InstanceSpec::paper(dist, beta);
            let mut rng = StdRng::seed_from_u64(beta as u64);
            let p = spec.generate(&mut rng).unwrap();
            let bound = superopt::super_optimal(&p).utility;
            for (name, u) in [
                ("algo1", Algo1.solve(&p).total_utility(&p)),
                ("algo2", Algo2.solve(&p).total_utility(&p)),
            ] {
                assert!(
                    u >= ALPHA * bound - 1e-6 * bound,
                    "{name} below α·F̂ on {} at β={beta}: {u} < {}",
                    dist.name(),
                    ALPHA * bound
                );
            }
        }
    }
}

#[test]
fn algo2_matches_exact_on_small_instances_within_alpha() {
    // Small instances from each distribution, solved exactly.
    for (i, dist) in DISTS.iter().enumerate() {
        let spec = InstanceSpec {
            servers: 2,
            beta: 3,
            capacity: 50.0,
            dist: *dist,
        };
        let mut rng = StdRng::seed_from_u64(100 + i as u64);
        let p = spec.generate(&mut rng).unwrap();
        let opt = BruteForce.solve(&p).total_utility(&p);
        let approx = Algo2.solve(&p).total_utility(&p);
        assert!(approx >= ALPHA * opt - 1e-6 * opt);
        assert!(approx <= opt + 1e-6 * opt);
        // The paper's empirical story: nearly optimal in practice.
        assert!(approx >= 0.9 * opt, "{}: {approx} vs opt {opt}", dist.name());
    }
}

#[test]
fn algo1_and_algo2_agree_within_tolerance_on_random_instances() {
    // Different tie-breaking means they need not match exactly, but both
    // carry the same guarantee; empirically they track closely.
    for seed in 0..5 {
        let spec = InstanceSpec::paper(Distribution::Uniform, 4);
        let mut rng = StdRng::seed_from_u64(seed);
        let p = spec.generate(&mut rng).unwrap();
        let u1 = Algo1.solve(&p).total_utility(&p);
        let u2 = Algo2.solve(&p).total_utility(&p);
        let bound = superopt::super_optimal(&p).utility;
        assert!((u1 - u2).abs() <= 0.1 * bound, "algo1 {u1} vs algo2 {u2}");
    }
}

#[test]
fn full_budget_is_used_when_demand_exceeds_supply() {
    // β ≥ 2 ⇒ plenty of demand; Algorithm 2 should leave no more than one
    // server-fragment unused per server with an unfull thread.
    let spec = InstanceSpec::paper(Distribution::Uniform, 6);
    let mut rng = StdRng::seed_from_u64(3);
    let p = spec.generate(&mut rng).unwrap();
    let a = Algo2.solve(&p);
    let total_alloc: f64 = a.amount.iter().sum();
    let pool = p.servers() as f64 * p.capacity();
    assert!(
        total_alloc >= 0.5 * pool,
        "only {total_alloc} of {pool} allocated"
    );
}
