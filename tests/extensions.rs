//! Cross-crate integration of the extension modules through the facade:
//! refinement, discrete rounding, heterogeneous capacities, laminar
//! budgets, statistics — composed the way a deployment would.

use std::sync::Arc;

use aa::allocator::laminar::{allocate_units_laminar, Node};
use aa::core::solver::{Algo2, Algo2Refined, Solver};
use aa::core::{discrete, exact_bb, hetero, refine, stats, superopt, Problem, ALPHA};
use aa::utility::{CappedLinear, DynUtility, LogUtility, Power, Scaled, Utility};

fn mixed_problem() -> Problem {
    Problem::builder(3, 16.0)
        .thread(Arc::new(Power::new(5.0, 0.5, 16.0)))
        .thread(Arc::new(LogUtility::new(4.0, 0.4, 16.0)))
        .thread(Arc::new(CappedLinear::new(2.0, 6.0, 16.0)))
        .thread(Arc::new(Power::new(1.5, 0.8, 16.0)))
        .thread(Arc::new(LogUtility::new(2.5, 1.2, 16.0)))
        .thread(Arc::new(CappedLinear::new(3.0, 4.0, 16.0)))
        .thread(Arc::new(Power::new(0.8, 0.6, 16.0)))
        .build()
        .unwrap()
}

#[test]
fn refined_solver_dominates_plain_algo2_everywhere_it_should() {
    let p = mixed_problem();
    let plain = Algo2.solve(&p).total_utility(&p);
    let refined = Algo2Refined.solve(&p).total_utility(&p);
    let bound = superopt::super_optimal(&p).utility;
    assert!(refined >= plain - 1e-9);
    assert!(refined >= ALPHA * bound - 1e-9);
    assert!(refined <= bound + 1e-9);
}

#[test]
fn full_pipeline_continuous_to_discrete_to_stats() {
    // Solve → refine → round to whole units → diagnose. The way an
    // operator would actually consume the library.
    let p = mixed_problem();
    let continuous = refine::solve_refined(&p);
    let integral = discrete::round_assignment(&p, &continuous, 1.0);
    integral.validate(&p).unwrap();

    let s = stats::stats(&p, &integral);
    assert!(s.total_utility > 0.0);
    assert!(s.capacity_utilization <= 1.0 + 1e-9);
    assert!((0.0..=1.0 + 1e-9).contains(&s.utility_fairness));
    assert_eq!(s.starved_threads + (p.len() - s.starved_threads), p.len());

    // Discretization at unit granularity costs almost nothing here.
    assert!(
        integral.total_utility(&p) >= 0.95 * continuous.total_utility(&p),
        "integral {} vs continuous {}",
        integral.total_utility(&p),
        continuous.total_utility(&p)
    );
}

#[test]
fn branch_and_bound_certifies_the_heuristic_stack() {
    let p = mixed_problem();
    let opt = exact_bb::optimal_utility(&p);
    for (name, u) in [
        ("algo2", Algo2.solve(&p).total_utility(&p)),
        ("algo2-refined", Algo2Refined.solve(&p).total_utility(&p)),
    ] {
        assert!(u <= opt + 1e-6 * opt, "{name} beat the optimum");
        assert!(u >= ALPHA * opt - 1e-6 * opt, "{name} below guarantee");
    }
}

#[test]
fn hetero_with_priority_weights() {
    // Compose: priority-weighted utilities (combinators) on a
    // heterogeneous fleet (extension).
    let threads: Vec<DynUtility> = (0..8)
        .map(|i| {
            let base = Power::new(1.0, 0.5, 12.0);
            let weight = if i < 2 { 10.0 } else { 1.0 }; // two VIP threads
            Arc::new(Scaled::new(base, weight)) as DynUtility
        })
        .collect();
    let hp = hetero::HeteroProblem::new(vec![12.0, 6.0, 3.0], threads).unwrap();
    let a = hetero::solve(&hp);
    a.validate(&hp).unwrap();
    // The VIP threads land on the largest servers with the most resource.
    let vip_alloc = a.amount[0].min(a.amount[1]);
    let best_other = a.amount[2..].iter().cloned().fold(0.0_f64, f64::max);
    assert!(
        vip_alloc >= best_other - 1e-9,
        "VIPs got {vip_alloc}, someone else got {best_other}"
    );
}

#[test]
fn laminar_budgets_compose_with_problem_utilities() {
    // Per-server AA allocation with an extra sub-group quota inside one
    // server — the library pieces compose without special plumbing.
    let p = mixed_problem();
    let views: Vec<_> = (0..4).map(|i| p.capped_thread(i)).collect();
    // Threads 0 and 1 share a 6-unit cgroup inside a 16-unit server.
    let tree = Node::Group {
        budget: 16.0,
        children: vec![
            Node::Group {
                budget: 6.0,
                children: vec![Node::Leaf(0), Node::Leaf(1)],
            },
            Node::Leaf(2),
            Node::Leaf(3),
        ],
    };
    let alloc = allocate_units_laminar(&views, &tree, 16, 1.0).unwrap();
    assert!(alloc.amounts[0] + alloc.amounts[1] <= 6.0 + 1e-9);
    assert!(alloc.total_allocated() <= 16.0 + 1e-9);
    // The quota binds: without it, threads 0+1 would take more.
    let free = aa::allocator::greedy::allocate_units(&views, 16, 1.0);
    assert!(free.amounts[0] + free.amounts[1] > 6.0);
}

#[test]
fn online_weight_bump_shifts_resources() {
    // Operator doubles a thread's priority at runtime; in-place repair
    // reallocates toward it without migrations.
    let before = mixed_problem();
    let a0 = Algo2.solve(&before);

    let mut threads: Vec<DynUtility> = before.threads().to_vec();
    threads[6] = Arc::new(Scaled::new(Power::new(0.8, 0.6, 16.0), 20.0));
    let after = Problem::new(3, 16.0, threads).unwrap();

    let repaired = aa::core::online::reallocate_in_place(&after, &a0);
    repaired.validate(&after).unwrap();
    assert_eq!(repaired.server, a0.server, "no migrations");
    assert!(
        repaired.amount[6] >= a0.amount[6] - 1e-9,
        "boosted thread lost resources: {} -> {}",
        a0.amount[6],
        repaired.amount[6]
    );
    assert!(repaired.total_utility(&after) >= a0.total_utility(&after) - 1e-9);
}

#[test]
fn utility_trait_is_object_safe_across_the_facade() {
    // A deployment can mix every family behind one Vec<DynUtility>.
    let zoo: Vec<DynUtility> = vec![
        Arc::new(Power::new(1.0, 0.5, 8.0)),
        Arc::new(LogUtility::new(2.0, 1.0, 8.0)),
        Arc::new(CappedLinear::new(1.0, 3.0, 8.0)),
        Arc::new(aa::utility::Pchip::new(&[(0.0, 0.0), (4.0, 3.0), (8.0, 4.0)]).unwrap()),
        Arc::new(
            aa::utility::PiecewiseLinear::new(&[(0.0, 0.0), (4.0, 4.0), (8.0, 6.0)]).unwrap(),
        ),
        Arc::new(Scaled::new(Power::new(1.0, 0.5, 8.0), 2.0)),
    ];
    let p = Problem::new(2, 8.0, zoo).unwrap();
    let a = Algo2.solve(&p);
    a.validate(&p).unwrap();
    assert!(a.total_utility(&p) > 0.0);
    for f in p.threads() {
        assert!(f.cap() <= 8.0 + 1e-9);
    }
}
