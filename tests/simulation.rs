//! Cross-crate integration of the simulation substrate with the solver:
//! the cache-partitioning and hosting pipelines end to end.

use aa::core::solver::{Algo2, Rr, Solver, Uu};
use aa::sim::hosting::{place, Fleet, Service};
use aa::sim::trace::TraceSpec;
use aa::sim::Multicore;
use aa::utility::{LogUtility, Power};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn traces(seed: u64) -> Vec<aa::sim::Trace> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = Vec::new();
    for i in 0..3 {
        t.push(TraceSpec::Zipf { lines: 80 + 40 * i, s: 1.0 + 0.1 * i as f64 }.generate(8000, &mut rng));
    }
    for i in 0..3 {
        t.push(TraceSpec::Looping { lines: 30 + 20 * i }.generate(8000, &mut rng));
    }
    t.push(TraceSpec::Streaming.generate(8000, &mut rng));
    t
}

#[test]
fn cache_pipeline_predictions_are_upper_bounds() {
    let machine = Multicore { cores: 2, ways_per_cache: 12, lines_per_way: 8 };
    let ts = traces(1);
    for solver in [&Algo2 as &dyn Solver, &Uu as &dyn Solver] {
        let out = machine.evaluate(&ts, solver);
        // The concave envelope dominates the measured curve, so the model
        // can only be optimistic.
        assert!(
            out.measured <= out.predicted + 1e-6,
            "measured {} above predicted {}",
            out.measured,
            out.predicted
        );
        assert!(out.measured > 0.0);
    }
}

#[test]
fn algo2_no_worse_than_baselines_in_simulation() {
    let machine = Multicore { cores: 2, ways_per_cache: 12, lines_per_way: 8 };
    let ts = traces(2);
    let smart = machine.evaluate(&ts, &Algo2).measured;
    for baseline in [&Uu as &dyn Solver, &Rr as &dyn Solver] {
        let b = machine.evaluate(&ts, baseline).measured;
        assert!(
            smart >= b - 1e-6,
            "algo2 measured {smart} below {} {b}",
            baseline.name()
        );
    }
}

#[test]
fn streaming_threads_get_no_ways_from_algo2() {
    let machine = Multicore { cores: 2, ways_per_cache: 8, lines_per_way: 8 };
    let ts = traces(3);
    let out = machine.evaluate(&ts, &Algo2);
    // The last trace streams; dedicating cache to it is pure waste and
    // Algorithm 2's super-optimal allocation gives it nothing.
    assert_eq!(out.ways[6], 0, "streaming thread was given cache");
}

#[test]
fn hosting_pipeline_revenue_ordering() {
    let fleet = Fleet { hosts: 2, capacity: 32.0 };
    let services: Vec<Service> = (0..8)
        .map(|i| Service {
            name: format!("svc-{i}"),
            revenue: if i % 2 == 0 {
                Arc::new(LogUtility::new(4.0 + i as f64, 0.3, 32.0)) as aa::utility::DynUtility
            } else {
                Arc::new(Power::new(1.0 + i as f64 * 0.2, 0.6, 32.0)) as aa::utility::DynUtility
            },
            min_footprint: if i < 4 { 1.0 } else { 0.0 },
        })
        .collect();
    let smart = place(&fleet, &services, &Algo2);
    let dumb = place(&fleet, &services, &Rr);
    assert!(smart.realized_revenue >= dumb.realized_revenue - 1e-9);
    assert!(smart.realized_revenue <= smart.predicted_revenue + 1e-9);
}

#[test]
fn phase_change_recovered_by_online_repair() {
    // End-to-end drift scenario: profile phase 1, partition for it, then
    // the workload enters phase 2. Re-profiling and running the online
    // repair recovers most of the lost throughput without re-solving.
    use aa::core::online::reallocate_in_place;

    let machine = Multicore { cores: 2, ways_per_cache: 12, lines_per_way: 8 };
    let mut rng = StdRng::seed_from_u64(9);
    let phased: Vec<aa::sim::Trace> = vec![
        TraceSpec::Phased { hot_lines: 12, loop_lines: 80 }.generate(8000, &mut rng),
        TraceSpec::Phased { hot_lines: 60, loop_lines: 16 }.generate(8000, &mut rng),
        TraceSpec::Zipf { lines: 60, s: 1.0 }.generate(8000, &mut rng),
        TraceSpec::Looping { lines: 40 }.generate(8000, &mut rng),
    ];
    let phase1: Vec<aa::sim::Trace> = phased.iter().map(|t| TraceSpec::split_phases(t).0).collect();
    let phase2: Vec<aa::sim::Trace> = phased.iter().map(|t| TraceSpec::split_phases(t).1).collect();

    // Solve for phase 1.
    let p1 = machine.build_problem(&phase1);
    let stale = aa::core::solver::Solver::solve(&Algo2, &p1);

    // Phase 2 arrives: the stale plan, measured on phase-2 behavior.
    let p2 = machine.build_problem(&phase2);
    let stale_ways = machine.round_ways(&p2, &stale);
    let stale_measured = machine.measure(&phase2, &stale.server, &stale_ways);

    // Zero-migration repair against the new profiles.
    let repaired = reallocate_in_place(&p2, &stale);
    let repaired_ways = machine.round_ways(&p2, &repaired);
    let repaired_measured = machine.measure(&phase2, &repaired.server, &repaired_ways);

    // A fresh solve for comparison. Both fresh and repaired optimize the
    // concave-envelope *model*, not the simulator. On cliff-shaped
    // (looping) curves the envelope is very optimistic at intermediate
    // allocations — the model happily splits a cache between two cliff
    // threads even though the simulator then gives neither any hits — so
    // a model-optimal fresh plan can genuinely *measure* worse than the
    // repaired stale plan. We assert only what the repair contract
    // promises: never lose to doing nothing, and both plans stay within
    // the model's predicted ceiling.
    let fresh = machine.evaluate(&phase2, &Algo2);

    assert!(
        repaired_measured >= stale_measured - 1e-9,
        "repair lost throughput: {repaired_measured} vs {stale_measured}"
    );
    assert!(fresh.measured <= fresh.predicted + 1e-9);
    let repaired_predicted = repaired.total_utility(&p2);
    assert!(repaired_measured <= repaired_predicted + 1e-9);
}
